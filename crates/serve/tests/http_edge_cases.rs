//! Differential HTTP edge-case suite: hostile and awkward byte streams
//! must elicit **identical** wire behavior from the pool backend (blocking
//! reader, the original and obviously-sequential implementation) and the
//! epoll backend (incremental framer + reactor). The pool backend is the
//! oracle; any divergence is a reactor bug.
//!
//! Covered: requests dripped one byte at a time (partial reads), two
//! requests in one TCP segment (pipelining), a stalled header
//! (slowloris-style — the server must neither answer early nor hang up),
//! bodies split across writes, garbage, oversized heads, and mid-header
//! EOF.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use atpm_serve::server::{AppState, Backend, ServeConfig, Server};

fn boot(backend: Backend) -> (Server, Arc<AppState>) {
    let state = AppState::new();
    let cfg = ServeConfig {
        workers: 2,
        shards: 1,
        backend,
        ..ServeConfig::default()
    };
    let server = Server::start(state.clone(), &cfg).unwrap();
    assert_eq!(
        server.backend(),
        backend,
        "platform must actually support the requested backend"
    );
    (server, state)
}

fn connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Reads until EOF (server closed) or the deadline, returning everything.
fn read_to_close(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

/// Reads exactly one HTTP response (status line + headers +
/// content-length body) off the stream.
fn read_one_response(stream: &mut TcpStream) -> (u16, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let text = String::from_utf8_lossy(&head);
    let status: u16 = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("response body");
    (status, body)
}

/// Runs `script` against a fresh connection on each backend and returns
/// the two full wire outputs (bytes until close) for comparison.
fn differential(script: impl Fn(&mut TcpStream)) -> (Vec<u8>, Vec<u8>) {
    let mut outputs = Vec::new();
    for backend in [Backend::Pool, Backend::Epoll] {
        let (mut server, _state) = boot(backend);
        let mut stream = connect(&server);
        script(&mut stream);
        let _ = stream.shutdown(Shutdown::Write);
        outputs.push(read_to_close(&mut stream));
        server.shutdown();
    }
    let epoll = outputs.pop().unwrap();
    let pool = outputs.pop().unwrap();
    (pool, epoll)
}

#[test]
fn dripped_request_one_byte_at_a_time() {
    let (pool, epoll) = differential(|stream| {
        for b in b"GET /healthz HTTP/1.1\r\n\r\n" {
            stream.write_all(&[*b]).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(text.contains("\"ok\":true"), "{text}");
}

#[test]
fn two_requests_in_one_segment_are_pipelined_in_order() {
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\n\r\nGET /nope HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    let first = text.find("HTTP/1.1 200 OK").expect("first response");
    let second = text
        .find("HTTP/1.1 404 Not Found")
        .expect("second response");
    assert!(first < second, "responses must preserve request order");
}

#[test]
fn slowloris_stalled_header_neither_answers_nor_hangs_up() {
    for backend in [Backend::Pool, Backend::Epoll] {
        let (mut server, _state) = boot(backend);
        let mut stream = connect(&server);
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nx-slow: lor")
            .unwrap();
        // Stall mid-header. The server must sit tight: no response bytes,
        // no close.
        stream
            .set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let mut probe = [0u8; 1];
        match stream.read(&mut probe) {
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
                "{backend:?}: unexpected error {e}"
            ),
            Ok(0) => panic!("{backend:?}: server hung up on a slow client"),
            Ok(_) => panic!("{backend:?}: server answered an incomplete request"),
        }
        // Completing the header gets the answer after all.
        stream.write_all(b"is\r\n\r\n").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let (status, body) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        assert!(String::from_utf8_lossy(&body).contains("\"ok\":true"));
        server.shutdown();
    }
}

#[test]
fn slowloris_with_idle_timeout_gets_reaped() {
    // The timeout variant: with `idle_timeout_ms` set (epoll backend only
    // — the pool oracle has no such knob), a stalled header no longer
    // pins the connection forever. The server must close it without
    // sending a byte, and a live connection must survive its own deadline
    // as long as it keeps talking.
    let state = AppState::new();
    let cfg = ServeConfig {
        workers: 2,
        shards: 1,
        backend: Backend::Epoll,
        idle_timeout_ms: Some(1_000),
        ..ServeConfig::default()
    };
    let mut server = Server::start(state, &cfg).unwrap();
    assert_eq!(server.backend(), Backend::Epoll);

    let mut stalled = connect(&server);
    stalled
        .write_all(b"GET /healthz HTTP/1.1\r\nx-slow: lor")
        .unwrap();
    let mut chatty = connect(&server);

    // Keep the chatty connection active past several deadlines, with a
    // cadence (200ms vs a 1s timeout) wide enough that CI scheduler
    // stalls cannot spuriously reap it.
    for _ in 0..8 {
        std::thread::sleep(Duration::from_millis(200));
        chatty
            .write_all(b"GET /healthz HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
            .unwrap();
        let (status, _) = read_one_response(&mut chatty);
        assert_eq!(status, 200, "active connection must survive the timeout");
    }

    // The stalled one must have been reaped: EOF, no response bytes.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let leftovers = read_to_close(&mut stalled);
    assert!(
        leftovers.is_empty(),
        "reaped connection must close silently, got {leftovers:?}"
    );
    server.shutdown();
}

#[test]
fn body_split_across_many_writes() {
    let body = b"{\"snapshot\":\"missing\",\"policy\":{\"name\":\"deploy_all\"},\"world_seed\":1}";
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(
                format!(
                    "POST /sessions HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        for chunk in body.chunks(7) {
            stream.write_all(chunk).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    assert!(
        text.starts_with("HTTP/1.1 404 Not Found"),
        "complete body must reach the router: {text}"
    );
}

#[test]
fn garbage_and_oversized_heads_get_matching_errors() {
    // Garbage request line → 400, close.
    let (pool, epoll) = differential(|stream| {
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
    });
    assert_eq!(pool, epoll);
    assert!(String::from_utf8_lossy(&pool).starts_with("HTTP/1.1 400 "));

    // Unsupported version → 505.
    let (pool, epoll) = differential(|stream| {
        stream.write_all(b"GET /x SPDY/3\r\n\r\n").unwrap();
    });
    assert_eq!(pool, epoll);
    assert!(String::from_utf8_lossy(&pool).starts_with("HTTP/1.1 505 "));

    // A never-ending header line → 431, close (the slowloris that never
    // stops talking, as opposed to the one that stops mid-word).
    let (pool, epoll) = differential(|stream| {
        let padding = vec![b'a'; 70 * 1024];
        stream.write_all(b"GET /x HTTP/1.1\r\nx-flood: ").unwrap();
        let _ = stream.write_all(&padding);
    });
    assert_eq!(pool, epoll);
    assert!(String::from_utf8_lossy(&pool).starts_with("HTTP/1.1 431 "));

    // Chunked transfer encoding → 501.
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .unwrap();
    });
    assert_eq!(pool, epoll);
    assert!(String::from_utf8_lossy(&pool).starts_with("HTTP/1.1 501 "));
}

#[test]
fn framer_hardening_rejects_are_byte_identical() {
    // The three PR-5 framer fixes, each asserted byte-identical across
    // backends: mismatched duplicate Content-Length (request smuggling),
    // sign-prefixed Content-Length (lenient integer parse), and
    // prefix-matched HTTP versions.

    // Duplicate Content-Length with mismatched values → 400, close. A
    // first-match parser would frame the body at 7 and treat the rest of
    // the bytes — here a second, attacker-shaped request — as pipelined.
    let smuggle: &[u8] = b"POST /sessions HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 999\r\n\r\n0123456GET /snapshots HTTP/1.1\r\n\r\n";
    let (pool, epoll) = differential(|stream| {
        stream.write_all(smuggle).unwrap();
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
    assert_eq!(
        text.matches("HTTP/1.1").count(),
        1,
        "the smuggled tail must never be answered as a second request: {text}"
    );

    // Sign-prefixed length (RFC 7230 forbids anything but 1*DIGIT) → 400.
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: +7\r\n\r\n0123456")
            .unwrap();
    });
    assert_eq!(pool, epoll);
    assert!(String::from_utf8_lossy(&pool).starts_with("HTTP/1.1 400 "));

    // Invented minor versions → 505 (only HTTP/1.0 and HTTP/1.1 pass).
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(b"GET /healthz HTTP/1.9999\r\n\r\n")
            .unwrap();
    });
    assert_eq!(pool, epoll);
    assert!(String::from_utf8_lossy(&pool).starts_with("HTTP/1.1 505 "));
}

#[test]
fn dripped_smuggling_attempt_gets_the_same_400() {
    // The incremental framer sees the conflicting lengths arrive one byte
    // at a time; it must neither answer early nor resolve first-match
    // once the head completes.
    let raw: &[u8] = b"POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 999\r\n\r\n0123456";
    let (pool, epoll) = differential(|stream| {
        for b in raw {
            // The server answers 400 and closes the moment the head
            // completes; dripping the (now unwanted) body tail may hit a
            // broken pipe, which is part of the expected shape.
            if stream.write_all(&[*b]).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    assert_eq!(pool, epoll);
    assert!(String::from_utf8_lossy(&pool).starts_with("HTTP/1.1 400 "));
}

#[test]
fn pipelined_request_after_agreeing_duplicates_still_answers() {
    // Byte-identical duplicate lengths are legal: the body frames once at
    // 7, and the genuinely pipelined second request is answered in order.
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(
                b"POST /nope HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7\r\n\r\n0123456GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    let first = text.find("HTTP/1.1 404 Not Found").expect("first response");
    let second = text.find("HTTP/1.1 200 OK").expect("second response");
    assert!(first < second, "responses must preserve request order");
}

#[test]
fn request_id_echo_is_byte_identical_across_backends() {
    // A usable client-supplied X-Request-Id (non-empty, ≤ 64 bytes, RFC
    // 7230 token chars) is echoed verbatim on both backends.
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\nx-request-id: client-id-1\r\nconnection: close\r\n\r\n",
            )
            .unwrap();
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    assert!(
        text.contains("x-request-id: client-id-1"),
        "supplied id must echo: {text}"
    );

    // No header → the server generates from a per-server counter that only
    // parsed requests consume, so a fresh server's first id is always
    // req-0000000000000000 on either backend.
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    assert!(
        text.contains("x-request-id: req-0000000000000000"),
        "generated id must be deterministic on a fresh server: {text}"
    );
}

#[test]
fn unusable_request_ids_are_replaced_not_echoed() {
    // Oversized (> 64 bytes) and non-token ids must not be reflected into
    // a response header; the server substitutes a generated id instead.
    let oversized = "a".repeat(65);
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(
                format!(
                    "GET /healthz HTTP/1.1\r\nx-request-id: {oversized}\r\nconnection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    assert!(!text.contains(&oversized), "oversized id echoed: {text}");
    assert!(
        text.contains("x-request-id: req-0000000000000000"),
        "{text}"
    );

    // Garbage id: spaces and slashes are not tchars (and could smuggle
    // header syntax if reflected).
    let (pool, epoll) = differential(|stream| {
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\nx-request-id: not a/token\r\nconnection: close\r\n\r\n",
            )
            .unwrap();
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    assert!(!text.contains("not a/token"), "garbage id echoed: {text}");
    assert!(
        text.contains("x-request-id: req-0000000000000000"),
        "{text}"
    );
}

#[test]
fn batch_routes_echo_request_ids_and_land_in_the_event_log() {
    // The new batch verbs go through the same diagnostic plumbing as every
    // other route: a usable client X-Request-Id echoes back on the
    // response, and both calls land in /debug/events under that id, on
    // either backend.
    use atpm_serve::json::Json;
    use atpm_serve::protocol::{SnapshotReq, SnapshotSource};
    use atpm_serve::snapshot::Snapshot;

    /// One response with its full head text (for header assertions).
    fn read_response_with_head(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("response head");
            head.push(byte[0]);
        }
        let text = String::from_utf8_lossy(&head).into_owned();
        let status: u16 = text
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let content_length: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body).expect("response body");
        (status, text, body)
    }

    fn post(stream: &mut TcpStream, path: &str, rid: &str, body: &str) -> (u16, String, Json) {
        stream
            .write_all(
                format!(
                    "POST {path} HTTP/1.1\r\nx-request-id: {rid}\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let (status, head, bytes) = read_response_with_head(stream);
        let json = Json::parse(&String::from_utf8_lossy(&bytes)).unwrap();
        (status, head, json)
    }

    for backend in [Backend::Pool, Backend::Epoll] {
        let (mut server, state) = boot(backend);
        state.store.insert(
            Snapshot::build(&SnapshotReq {
                name: "g".into(),
                source: SnapshotSource::Preset {
                    dataset: "nethept".into(),
                    scale: 0.02,
                },
                k: 4,
                rr_theta: 4_000,
                seed: 1,
                threads: 1,
            })
            .unwrap(),
        );
        let mut stream = connect(&server);
        let (status, _, created) = post(
            &mut stream,
            "/sessions",
            "batch-create-1",
            r#"{"snapshot":"g","policy":{"name":"deploy_all"},"world_seed":3}"#,
        );
        assert_eq!(status, 201, "{backend:?}");
        let token = created.get("session").and_then(Json::as_str).unwrap().to_string();

        let (status, head, resp) = post(
            &mut stream,
            &format!("/sessions/{token}/next_batch"),
            "batch-next-1",
            r#"{"k":2}"#,
        );
        assert_eq!(status, 200, "{backend:?}");
        assert!(
            head.contains("x-request-id: batch-next-1"),
            "{backend:?}: supplied id must echo on next_batch: {head}"
        );
        let seeds: Vec<u64> = resp
            .get("seeds")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert!(!seeds.is_empty(), "{backend:?}");

        let seeds_json = seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let (status, head, _) = post(
            &mut stream,
            &format!("/sessions/{token}/observe_batch"),
            "batch-observe-1",
            &format!(r#"{{"seeds":[{seeds_json}],"simulate":true}}"#),
        );
        assert_eq!(status, 200, "{backend:?}");
        assert!(
            head.contains("x-request-id: batch-observe-1"),
            "{backend:?}: supplied id must echo on observe_batch: {head}"
        );

        // Both calls must be visible in the structured event ring, keyed by
        // the client-supplied ids.
        stream
            .write_all(b"GET /debug/events HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        let events = String::from_utf8_lossy(&read_to_close(&mut stream)).into_owned();
        assert!(
            events.contains("batch-next-1") && events.contains("next_batch"),
            "{backend:?}: next_batch missing from event log:\n{events}"
        );
        assert!(
            events.contains("batch-observe-1") && events.contains("observe_batch"),
            "{backend:?}: observe_batch missing from event log:\n{events}"
        );
        server.shutdown();
    }
}

#[test]
fn eof_mid_header_answers_400_and_closes() {
    let (pool, epoll) = differential(|stream| {
        stream.write_all(b"GET /healthz HTT").unwrap();
        // The differential driver shuts down the write side after the
        // script, producing the mid-header EOF.
    });
    assert_eq!(pool, epoll);
    let text = String::from_utf8_lossy(&pool);
    assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
    assert!(text.contains("mid-header"), "{text}");
}

#[test]
fn clean_eof_on_idle_keepalive_closes_silently() {
    let (pool, epoll) = differential(|stream| {
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        // Read our response, then just go away (shutdown in the driver).
        let (status, _) = read_one_response(stream);
        assert_eq!(status, 200);
    });
    // Both backends: nothing after the first response.
    assert_eq!(pool, epoll);
    assert!(
        pool.is_empty(),
        "no bytes owed after a clean keep-alive EOF"
    );
}
