//! End-to-end protocol equivalence: a full adaptive run driven through the
//! HTTP protocol must produce the **byte-identical** seed sequence and
//! profit ledger as the same policy run in-process via `AdaptiveSession`,
//! for the same possible world.
//!
//! This is the serve layer's core correctness property — the network hop,
//! the suspend/resume cycle per request, the JSON codec, and the stepper
//! inversion must all be transparent. It holds for every steppable policy
//! and world seed; the test sweeps HATP (the paper's flagship), ARS, and
//! the DeployAll baseline over several worlds, property-test style.

use std::sync::Arc;

use atpm_core::{AdaptivePolicy, AdaptiveSession};
use atpm_graph::GraphView;
use atpm_serve::client::{HttpClient, LocalClient, ProtocolClient};
use atpm_serve::protocol::{
    CreateSessionReq, Ledger, ObserveReq, PolicySpec, SnapshotReq, SnapshotSource,
};
use atpm_serve::server::{AppState, ServeConfig, Server};
use atpm_serve::snapshot::Snapshot;

const WORLDS: [u64; 4] = [1, 7, 20200420, u64::MAX / 3];

fn snapshot_req() -> SnapshotReq {
    SnapshotReq {
        name: "e2e".into(),
        source: SnapshotSource::Preset {
            dataset: "nethept".into(),
            scale: 0.02, // ~300 nodes: big enough for real cascades, fast
        },
        k: 6,
        rr_theta: 5_000,
        seed: 9,
        threads: 2,
    }
}

/// An in-process runner equivalent to a wire spec.
type PolicyRunner = Box<dyn FnMut(&mut AdaptiveSession<'_>) -> Vec<u32>>;

/// The policies under test, as (wire spec, equivalent in-process runner).
fn policies() -> Vec<(PolicySpec, PolicyRunner)> {
    use atpm_core::policies::{Ars, DeployAll, Hatp, ThresholdBatch};
    let hatp_spec = PolicySpec::Hatp {
        eps_threshold: Some(0.1),
        max_theta: Some(1 << 16),
        seed: 5,
        threads: 2,
    };
    let mut hatp = Hatp {
        eps_threshold: 0.1,
        max_theta: 1 << 16,
        seed: 5,
        threads: 2,
        ..Default::default()
    };
    let ars_spec = PolicySpec::Ars { prob: 0.5, seed: 3 };
    let mut ars = Ars { prob: 0.5, seed: 3 };
    let deploy_spec = PolicySpec::DeployAll;
    let mut deploy = DeployAll;
    // batch: 1 — these sweeps drive the single-seed protocol verbs, and
    // ThresholdBatch's threshold floor depends on the round's k.
    let tb_spec = PolicySpec::ThresholdBatch {
        theta: 4_000,
        eps: 0.1,
        batch: 1,
        seed: 13,
        threads: 2,
    };
    let mut tb = ThresholdBatch {
        theta: 4_000,
        eps: 0.1,
        batch: 1,
        seed: 13,
        threads: 2,
    };
    vec![
        (
            hatp_spec,
            Box::new(move |s: &mut AdaptiveSession<'_>| hatp.run(s)),
        ),
        (
            ars_spec,
            Box::new(move |s: &mut AdaptiveSession<'_>| ars.run(s)),
        ),
        (
            deploy_spec,
            Box::new(move |s: &mut AdaptiveSession<'_>| deploy.run(s)),
        ),
        (
            tb_spec,
            Box::new(move |s: &mut AdaptiveSession<'_>| tb.run(s)),
        ),
    ]
}

/// Runs the policy in-process on `snapshot`'s instance and returns its
/// ledger in wire form for exact comparison.
fn in_process_ledger(
    snapshot: &Snapshot,
    run: &mut dyn FnMut(&mut AdaptiveSession<'_>) -> Vec<u32>,
    algorithm: &str,
    world: u64,
) -> Ledger {
    let mut session = AdaptiveSession::new(&snapshot.instance, world);
    let selected = run(&mut session);
    Ledger {
        algorithm: algorithm.to_string(),
        selected,
        profit: session.profit(),
        total_activated: session.total_activated(),
        num_alive: session.residual().num_alive(),
        sampling_work: session.sampling_work(),
        rounds: session.rounds(),
        oracle_queries: session.oracle_queries(),
        done: true,
    }
}

fn assert_ledgers_identical(via_protocol: &Ledger, in_process: &Ledger, label: &str) {
    assert_eq!(
        via_protocol.selected, in_process.selected,
        "{label}: seed sequences diverged"
    );
    assert_eq!(
        via_protocol.profit.to_bits(),
        in_process.profit.to_bits(),
        "{label}: profit not byte-identical ({} vs {})",
        via_protocol.profit,
        in_process.profit
    );
    assert_eq!(
        via_protocol.total_activated, in_process.total_activated,
        "{label}"
    );
    assert_eq!(via_protocol.num_alive, in_process.num_alive, "{label}");
    assert_eq!(
        via_protocol.sampling_work, in_process.sampling_work,
        "{label}"
    );
    assert_eq!(via_protocol.rounds, in_process.rounds, "{label}");
    assert_eq!(
        via_protocol.oracle_queries, in_process.oracle_queries,
        "{label}"
    );
    assert!(via_protocol.done, "{label}: protocol run must finish");
}

#[test]
fn http_protocol_run_is_byte_identical_to_in_process_run() {
    let state = AppState::new();
    let snapshot = state
        .store
        .insert(Snapshot::build(&snapshot_req()).unwrap());
    let mut server = Server::start(state, &ServeConfig::default()).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    for (spec, mut run) in policies() {
        let name = match &spec {
            PolicySpec::Hatp { .. } => "HATP",
            PolicySpec::Ars { .. } => "ARS",
            PolicySpec::DeployAll => "DeployAll",
            PolicySpec::ThresholdBatch { .. } => "ThresholdBatch",
        };
        for world in WORLDS {
            let label = format!("{name} world={world}");
            let via_http = client
                .run_session(&CreateSessionReq {
                    snapshot: "e2e".into(),
                    policy: spec.clone(),
                    world_seed: world,
                })
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            let reference = in_process_ledger(&snapshot, run.as_mut(), name, world);
            assert_ledgers_identical(&via_http, &reference, &label);
        }
    }
    server.shutdown();
}

#[test]
fn local_client_run_is_byte_identical_to_in_process_run() {
    // Same property, no sockets: pins that LocalClient and the HTTP path
    // share one dispatcher.
    let state = AppState::new();
    let snapshot = state
        .store
        .insert(Snapshot::build(&snapshot_req()).unwrap());
    let mut client = LocalClient::new(state);

    for (spec, mut run) in policies() {
        let name = match &spec {
            PolicySpec::Hatp { .. } => "HATP",
            PolicySpec::Ars { .. } => "ARS",
            PolicySpec::DeployAll => "DeployAll",
            PolicySpec::ThresholdBatch { .. } => "ThresholdBatch",
        };
        for world in WORLDS.into_iter().take(2) {
            let via_local = client
                .run_session(&CreateSessionReq {
                    snapshot: "e2e".into(),
                    policy: spec.clone(),
                    world_seed: world,
                })
                .unwrap();
            let reference = in_process_ledger(&snapshot, run.as_mut(), name, world);
            assert_ledgers_identical(&via_local, &reference, &format!("local {name} {world}"));
        }
    }
}

#[test]
fn interleaved_concurrent_sessions_do_not_contaminate_each_other() {
    // Two HATP sessions on different worlds advanced in lockstep over one
    // shared server must each match their isolated in-process runs — the
    // per-session state carries everything; nothing leaks through the
    // shared snapshot.
    let state = AppState::new();
    let snapshot = state
        .store
        .insert(Snapshot::build(&snapshot_req()).unwrap());
    let mut server = Server::start(state, &ServeConfig::default()).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let spec = PolicySpec::Hatp {
        eps_threshold: Some(0.1),
        max_theta: Some(1 << 16),
        seed: 5,
        threads: 2,
    };
    let worlds = [11u64, 42u64];
    let tokens: Vec<String> = worlds
        .iter()
        .map(|&w| {
            client
                .create_session(&CreateSessionReq {
                    snapshot: "e2e".into(),
                    policy: spec.clone(),
                    world_seed: w,
                })
                .unwrap()
        })
        .collect();

    // Round-robin drive until both finish.
    let mut open: Vec<bool> = vec![true; tokens.len()];
    while open.iter().any(|&o| o) {
        for (i, token) in tokens.iter().enumerate() {
            if !open[i] {
                continue;
            }
            match client.next(token).unwrap() {
                None => open[i] = false,
                Some(seeds) => {
                    for seed in seeds {
                        client
                            .observe(token, &ObserveReq::Simulate { seed })
                            .unwrap();
                    }
                }
            }
        }
    }

    for (i, &w) in worlds.iter().enumerate() {
        let via_http = client.ledger(&tokens[i]).unwrap();
        let mut hatp = atpm_core::policies::Hatp {
            eps_threshold: 0.1,
            max_theta: 1 << 16,
            seed: 5,
            threads: 2,
            ..Default::default()
        };
        let reference = in_process_ledger(&snapshot, &mut |s| hatp.run(s), "HATP", w);
        assert_ledgers_identical(&via_http, &reference, &format!("interleaved world {w}"));
    }
    server.shutdown();
}

#[test]
fn report_mode_with_client_side_simulation_matches_too() {
    // The fully inverted protocol: the *client* owns the world and reports
    // activations (what a real deployment does). A client-side twin session
    // simulates cascades; the server never touches its realization.
    let state = AppState::new();
    let snapshot = state
        .store
        .insert(Snapshot::build(&snapshot_req()).unwrap());
    let mut client = LocalClient::new(state);

    for world in [3u64, 8u64] {
        let token = client
            .create_session(&CreateSessionReq {
                snapshot: "e2e".into(),
                policy: PolicySpec::DeployAll,
                world_seed: 0, // server world deliberately unused
            })
            .unwrap();
        // Client-side world: the session a real deployment would *be*.
        let mut world_session = AdaptiveSession::new(&snapshot.instance, world);
        while let Some(seeds) = client.next(&token).unwrap() {
            for seed in seeds {
                let activated = world_session.select(seed);
                client
                    .observe(&token, &ObserveReq::Report { seed, activated })
                    .unwrap();
            }
        }
        let via_protocol = client.ledger(&token).unwrap();
        let mut deploy = atpm_core::policies::DeployAll;
        let reference = in_process_ledger(&snapshot, &mut |s| deploy.run(s), "DeployAll", world);
        assert_ledgers_identical(&via_protocol, &reference, &format!("report world {world}"));
        client.delete_session(&token).unwrap();
    }
}

#[test]
fn batch_routes_at_k1_are_byte_identical_to_single_seed_protocol_on_both_backends() {
    // The tentpole invariant: a batched drive with k = 1 through the new
    // next_batch/observe_batch routes must produce the byte-identical seed
    // sequence and profit ledger as the single-seed next/observe protocol —
    // on the pool backend and the epoll backend alike.
    use atpm_serve::server::Backend;
    for backend in [Backend::Pool, Backend::Epoll] {
        let state = AppState::new();
        state
            .store
            .insert(Snapshot::build(&snapshot_req()).unwrap());
        let cfg = ServeConfig {
            backend,
            ..ServeConfig::default()
        };
        let mut server = Server::start(state, &cfg).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for (spec, _) in policies() {
            for world in WORLDS.into_iter().take(2) {
                let req = CreateSessionReq {
                    snapshot: "e2e".into(),
                    policy: spec.clone(),
                    world_seed: world,
                };
                let single = client.run_session(&req).unwrap();
                let batched = client.run_session_batched(&req, 1).unwrap();
                let label = format!(
                    "{} backend={} world={world}",
                    single.algorithm,
                    backend.as_str()
                );
                assert_eq!(batched, single, "{label}: ledgers diverged");
                assert_eq!(
                    batched.profit.to_bits(),
                    single.profit.to_bits(),
                    "{label}: profit not byte-identical"
                );
                assert_eq!(batched.rounds, single.rounds, "{label}");
                assert_eq!(batched.oracle_queries, single.oracle_queries, "{label}");
            }
        }
        server.shutdown();
    }
}

#[test]
fn batched_rounds_converge_in_fewer_round_trips_with_the_same_outcome() {
    // ThresholdBatch at k = 4 must finish in strictly fewer adaptivity
    // rounds than at k = 1 while staying a valid run (the quality trade is
    // bounded, not byte-pinned — decisions legitimately differ across k).
    let state = AppState::new();
    state
        .store
        .insert(Snapshot::build(&snapshot_req()).unwrap());
    let mut client = LocalClient::new(state);
    let spec = PolicySpec::ThresholdBatch {
        theta: 4_000,
        eps: 0.1,
        batch: 4,
        seed: 13,
        threads: 2,
    };
    for world in WORLDS.into_iter().take(2) {
        let req = CreateSessionReq {
            snapshot: "e2e".into(),
            policy: spec.clone(),
            world_seed: world,
        };
        let k1 = client.run_session_batched(&req, 1).unwrap();
        let k4 = client.run_session_batched(&req, 4).unwrap();
        assert!(k4.done && k1.done, "world {world}");
        assert!(
            k1.selected.len() <= 1 || k4.rounds < k1.rounds,
            "world {world}: k=4 took {} rounds vs {} at k=1",
            k4.rounds,
            k1.rounds
        );
        assert!(!k4.selected.is_empty(), "world {world}");
    }
}

#[test]
fn snapshot_arc_is_shared_not_copied() {
    let state = AppState::new();
    let arc = state
        .store
        .insert(Snapshot::build(&snapshot_req()).unwrap());
    assert_eq!(Arc::strong_count(&arc), 2, "store + test");
    let mut client = LocalClient::new(state.clone());
    let token = client
        .create_session(&CreateSessionReq {
            snapshot: "e2e".into(),
            policy: PolicySpec::DeployAll,
            world_seed: 1,
        })
        .unwrap();
    assert_eq!(Arc::strong_count(&arc), 3, "session holds a reference");
    client.delete_session(&token).unwrap();
    assert_eq!(Arc::strong_count(&arc), 2);
}
