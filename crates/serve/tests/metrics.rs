//! `/metrics` endpoint integration suite.
//!
//! Pins the three properties the observability layer promises the serving
//! stack:
//!
//! 1. **Backend parity** — an at-rest scrape (the first-ever request on a
//!    fresh server) is byte-identical across the epoll and pool backends.
//!    Everything recorded *before* `respond` runs must therefore agree
//!    (net counters), and everything that could differ (latency
//!    histograms, queue waits) must record strictly *after*.
//! 2. **Exposition hygiene** — every scrape passes the Prometheus 0.0.4
//!    lint, carries the text-exposition content type, and counters only
//!    ever go up.
//! 3. **End-to-end visibility** — the per-instance serve registry and the
//!    process-global registry (RIS/diffusion stage metrics) merge into one
//!    exposition, the sessions-active gauge tracks `/healthz`, and
//!    `trace_path` dumps Perfetto-loadable Chrome trace JSON at shutdown.
//!
//! The registry under `atpm_obs::global()` and the tracer are process-wide
//! singletons, so every test here serializes on one mutex — parallel tests
//! would otherwise mutate the exposition between paired scrapes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};

use atpm_obs::{lint, Scrape, CONTENT_TYPE};
use atpm_serve::client::{HttpClient, ProtocolClient};
use atpm_serve::protocol::{CreateSessionReq, PolicySpec, SnapshotReq, SnapshotSource};
use atpm_serve::server::{AppState, Backend, ServeConfig, Server};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    SERIAL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn config(backend: Backend) -> ServeConfig {
    ServeConfig {
        backend,
        workers: 2,
        shards: 1,
        ..ServeConfig::default()
    }
}

/// Raw GET keeping headers, for the content-type assertion `HttpClient`
/// (body-only) cannot make.
fn raw_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nhost: atpm\r\nconnection: close\r\ncontent-length: 0\r\n\r\n"
    )
    .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8(response).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn at_rest_scrape_is_byte_identical_across_backends() {
    let _guard = serial();
    let mut expositions = Vec::new();
    for backend in [Backend::Pool, Backend::Epoll] {
        let mut server = Server::start(AppState::new(), &config(backend)).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        // The scrape is the first request this server ever sees: at render
        // time both backends have accepted and dispatched exactly once
        // (this connection) and recorded nothing else.
        let (status, body) = client.get_text("/metrics").unwrap();
        assert_eq!(status, 200, "{backend:?}");
        lint(&body).unwrap_or_else(|e| panic!("{backend:?} lint: {e}"));
        expositions.push((server.backend(), body));
        server.shutdown();
    }
    // On platforms without epoll the second server silently fell back to
    // the pool backend — parity then holds trivially, which is fine: the
    // assertion is about the exposition, not the transport.
    let (_, pool_body) = &expositions[0];
    let (_, epoll_body) = &expositions[1];
    // The process self-metrics (RSS, CPU seconds, open fds) are genuinely
    // time-dependent — fd count even varies with the test's own sockets —
    // so they are excluded from the byte-compare but must be present in
    // both expositions.
    for family in [
        "process_resident_memory_bytes",
        "process_cpu_seconds_total",
        "process_open_fds",
    ] {
        assert!(pool_body.contains(family), "pool missing {family}");
        assert!(epoll_body.contains(family), "epoll missing {family}");
    }
    let strip_process = |body: &str| -> String {
        body.lines()
            .filter(|l| !l.contains("process_"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_process(pool_body),
        strip_process(epoll_body),
        "at-rest /metrics must not depend on the backend"
    );
    let scrape = Scrape::parse(pool_body).unwrap();
    assert_eq!(scrape.value("atpm_net_accepted_total", &[]), Some(1.0));
    assert_eq!(scrape.value("atpm_net_dispatched_total", &[]), Some(1.0));
    assert_eq!(scrape.value("atpm_net_conns_closed_total", &[]), Some(0.0));
    // The scrape never counts itself: request latency records after
    // respond, so the at-rest histogram is empty.
    assert_eq!(
        scrape.value("atpm_http_request_seconds_count", &[]),
        Some(0.0)
    );
    assert_eq!(
        scrape.value("atpm_http_queue_wait_seconds_count", &[]),
        Some(0.0)
    );
}

#[test]
fn scrapes_lint_carry_content_type_and_counters_are_monotone() {
    let _guard = serial();
    let mut server = Server::start(AppState::new(), &config(Backend::Epoll)).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let (_, body) = client.get_text("/healthz").unwrap();
    assert!(body.contains("\"ok\""));
    let (status, first) = client.get_text("/metrics").unwrap();
    assert_eq!(status, 200);
    lint(&first).unwrap();

    // More traffic between scrapes, including a 404 (errors count too).
    for _ in 0..3 {
        client.get_text("/healthz").unwrap();
    }
    let (not_found, _) = client.get_text("/nope").unwrap();
    assert_eq!(not_found, 404);

    let (head, second) = raw_get(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"));
    let ct_line = format!("content-type: {CONTENT_TYPE}");
    assert!(
        head.to_ascii_lowercase().contains(&ct_line),
        "missing exposition content type in {head:?}"
    );
    lint(&second).unwrap();

    let before = Scrape::parse(&first).unwrap();
    let after = Scrape::parse(&second).unwrap();
    for series in [
        "atpm_net_accepted_total",
        "atpm_net_dispatched_total",
        "atpm_net_conns_closed_total",
        "atpm_http_request_seconds_count",
        "atpm_http_request_seconds_sum",
        "atpm_serve_shed_503_total",
    ] {
        let (a, b) = (
            before
                .value(series, &[])
                .unwrap_or_else(|| panic!("{series} missing")),
            after
                .value(series, &[])
                .unwrap_or_else(|| panic!("{series} missing")),
        );
        assert!(b >= a, "{series} went backwards: {a} -> {b}");
    }
    // The 5 requests between the scrapes (4 healthz + the 404) plus the
    // first scrape itself are all visible to the second one.
    let healthz = |s: &Scrape| s.value("atpm_http_route_seconds_count", &[("route", "healthz")]);
    assert_eq!(healthz(&after).unwrap() - healthz(&before).unwrap(), 3.0);
    let other = |s: &Scrape| s.value("atpm_http_route_seconds_count", &[("route", "other")]);
    assert_eq!(other(&after).unwrap() - other(&before).unwrap(), 1.0);
    let total = |s: &Scrape| s.value("atpm_http_request_seconds_count", &[]);
    assert_eq!(total(&after).unwrap() - total(&before).unwrap(), 5.0);
    server.shutdown();
}

#[test]
fn stage_metrics_session_gauge_and_trace_dump_cover_a_full_run() {
    let _guard = serial();
    let trace_path = std::env::temp_dir().join(format!("atpm-trace-{}.json", std::process::id()));
    let cfg = ServeConfig {
        trace_path: Some(trace_path.to_string_lossy().into_owned()),
        ..config(Backend::Epoll)
    };
    let mut server = Server::start(AppState::new(), &cfg).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Build a snapshot through the wire: the RIS sampler runs inside the
    // server with tracing enabled, so stage counters land on the global
    // registry and spans land in the tracer.
    client
        .create_snapshot(&SnapshotReq {
            name: "obs".into(),
            source: SnapshotSource::Preset {
                dataset: "nethept".into(),
                scale: 0.02,
            },
            k: 4,
            rr_theta: 4_000,
            seed: 1,
            threads: 1,
        })
        .unwrap();
    let token = client
        .create_session(&CreateSessionReq {
            snapshot: "obs".into(),
            policy: PolicySpec::DeployAll,
            world_seed: 7,
        })
        .unwrap();

    let (_, body) = client.get_text("/metrics").unwrap();
    lint(&body).unwrap();
    let scrape = Scrape::parse(&body).unwrap();
    // Global-registry families merged into the serve exposition.
    assert!(scrape.value("atpm_ris_batches_total", &[]).unwrap() >= 1.0);
    assert!(scrape.value("atpm_ris_sets_total", &[]).unwrap() >= 4_000.0);
    // Session lifecycle: one live session, visible both as the gauge and
    // in /healthz (which reads the same manager).
    assert_eq!(scrape.value("atpm_serve_sessions_active", &[]), Some(1.0));
    assert_eq!(
        scrape.value("atpm_serve_sessions_created_total", &[]),
        Some(1.0)
    );
    let (_, health) = client.get_text("/healthz").unwrap();
    assert!(health.contains("\"sessions\":1"), "healthz: {health}");
    let route = |r: &str| scrape.value("atpm_http_route_seconds_count", &[("route", r)]);
    assert_eq!(route("snapshots_create"), Some(1.0));
    assert_eq!(route("session_create"), Some(1.0));

    client.delete_session(&token).unwrap();
    let (_, body) = client.get_text("/metrics").unwrap();
    let scrape = Scrape::parse(&body).unwrap();
    assert_eq!(scrape.value("atpm_serve_sessions_active", &[]), Some(0.0));
    assert_eq!(
        scrape.value("atpm_serve_sessions_deleted_total", &[]),
        Some(1.0)
    );

    // Shutdown dumps the Chrome trace; the RIS stage spans from the
    // snapshot build must be in it.
    server.shutdown();
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    std::fs::remove_file(&trace_path).ok();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(
        trace.contains("\"ph\":\"X\""),
        "no duration events in trace"
    );
    assert!(
        trace.contains("\"cat\":\"ris\""),
        "no RIS stage spans in trace"
    );
    atpm_obs::tracer().set_enabled(false);
}
