//! Crash-safe durability, end to end over real sockets: a server journaling
//! to `--journal`-style config is killed mid-session (process-level kill is
//! simulated by leaking the server — no drain, no shutdown, no fsync), a
//! fresh server replays the same journal, and the recovered session must
//! continue **bit-for-bit** where the lost one stopped: same pending seed
//! for the client's retried `next`, same seed sequence overall, same profit
//! ledger as an uninterrupted reference run.

use std::sync::Arc;

use atpm_serve::client::{HttpClient, LocalClient, ProtocolClient};
use atpm_serve::json::Json;
use atpm_serve::protocol::{CreateSessionReq, ObserveReq, PolicySpec, SnapshotReq, SnapshotSource};
use atpm_serve::server::{AppState, ServeConfig, Server};
use atpm_serve::snapshot::Snapshot;

fn snapshot_req() -> SnapshotReq {
    SnapshotReq {
        name: "g".into(),
        source: SnapshotSource::Preset {
            dataset: "nethept".into(),
            scale: 0.02,
        },
        k: 5,
        rr_theta: 5_000,
        seed: 1,
        threads: 1,
    }
}

fn state_with_snapshot() -> Arc<AppState> {
    let state = AppState::new();
    state
        .store
        .insert(Snapshot::build(&snapshot_req()).unwrap());
    state
}

fn session_req() -> CreateSessionReq {
    CreateSessionReq {
        snapshot: "g".into(),
        policy: PolicySpec::DeployAll,
        world_seed: 17,
    }
}

/// Drives `token` to completion via server-simulated observations,
/// appending each committed seed to `seeds`; returns the final ledger JSON.
fn drive<C: ProtocolClient>(client: &mut C, token: &str, seeds: &mut Vec<u32>) -> Json {
    loop {
        match client.next(token).unwrap() {
            None => {
                return client
                    .call("GET", &format!("/sessions/{token}/ledger"), &Json::obj([]))
                    .unwrap()
            }
            Some(batch) => {
                let seed = batch[0];
                seeds.push(seed);
                client
                    .observe(token, &ObserveReq::Simulate { seed })
                    .unwrap();
            }
        }
    }
}

#[test]
fn killed_mid_session_server_recovers_bit_for_bit_from_the_journal() {
    let mut path = std::env::temp_dir();
    path.push(format!("atpm-e2e-journal-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journal_cfg = ServeConfig {
        journal_path: Some(path.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    };

    // Reference: the identical session driven uninterrupted and journal-free
    // through the in-process client (the protocol-equivalence oracle).
    let mut reference_seeds = Vec::new();
    let reference_ledger = {
        let mut client = LocalClient::new(state_with_snapshot());
        let token = client.create_session(&session_req()).unwrap();
        drive(&mut client, &token, &mut reference_seeds)
    };

    // Server A: two observed rounds, then a `next` whose seed is committed
    // (and journaled) but never observed — and the process "dies": the
    // server is leaked, so no graceful drain, shutdown, or fsync runs.
    let (token, pending, mut seeds_so_far) = {
        let server = Server::start(state_with_snapshot(), &journal_cfg).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let token = client.create_session(&session_req()).unwrap();
        let mut seeds = Vec::new();
        for _ in 0..2 {
            let seed = client.next(&token).unwrap().unwrap()[0];
            seeds.push(seed);
            client
                .observe(&token, &ObserveReq::Simulate { seed })
                .unwrap();
        }
        let pending = client.next(&token).unwrap().unwrap()[0];
        std::mem::forget(server); // kill -9, as close as one process gets
        (token, pending, seeds)
    };
    assert_eq!(seeds_so_far, reference_seeds[..2]);
    assert_eq!(pending, reference_seeds[2], "pending seed diverged");

    // Server B: fresh state, same snapshot build, same journal.
    let mut server = Server::start(state_with_snapshot(), &journal_cfg).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let health = client.call("GET", "/healthz", &Json::obj([])).unwrap();
    assert_eq!(
        health.get("recovered_sessions").and_then(Json::as_u64),
        Some(1),
        "healthz must report the recovered session"
    );
    // The client retries the `next` whose reply the crash may have eaten:
    // idempotent — the same committed seed comes back, not a 409.
    let retried = client.next(&token).unwrap().unwrap();
    assert_eq!(
        retried,
        vec![pending],
        "retried next must re-serve the pending seed"
    );
    seeds_so_far.push(pending);
    client
        .observe(&token, &ObserveReq::Simulate { seed: pending })
        .unwrap();
    let ledger = drive(&mut client, &token, &mut seeds_so_far);

    assert_eq!(
        seeds_so_far, reference_seeds,
        "recovered session must replay the exact seed sequence"
    );
    let profit = |l: &Json| l.get("profit").and_then(Json::as_f64).unwrap();
    assert_eq!(
        profit(&ledger).to_bits(),
        profit(&reference_ledger).to_bits(),
        "recovered profit ledger must be bit-equal"
    );
    assert_eq!(
        ledger.get("total_activated").and_then(Json::as_u64),
        reference_ledger
            .get("total_activated")
            .and_then(Json::as_u64)
    );
    assert_eq!(ledger.get("selected"), reference_ledger.get("selected"));

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
