//! Crash-safe durability, end to end over real sockets: a server journaling
//! to `--journal`-style config is killed mid-session (process-level kill is
//! simulated by leaking the server — no drain, no shutdown, no fsync), a
//! fresh server replays the same journal, and the recovered session must
//! continue **bit-for-bit** where the lost one stopped: same pending seed
//! for the client's retried `next`, same seed sequence overall, same profit
//! ledger as an uninterrupted reference run.

use std::sync::Arc;

use atpm_serve::client::{HttpClient, LocalClient, ProtocolClient};
use atpm_serve::json::Json;
use atpm_serve::protocol::{CreateSessionReq, ObserveReq, PolicySpec, SnapshotReq, SnapshotSource};
use atpm_serve::server::{AppState, ServeConfig, Server};
use atpm_serve::snapshot::Snapshot;

fn snapshot_req() -> SnapshotReq {
    SnapshotReq {
        name: "g".into(),
        source: SnapshotSource::Preset {
            dataset: "nethept".into(),
            scale: 0.02,
        },
        k: 5,
        rr_theta: 5_000,
        seed: 1,
        threads: 1,
    }
}

fn state_with_snapshot() -> Arc<AppState> {
    let state = AppState::new();
    state
        .store
        .insert(Snapshot::build(&snapshot_req()).unwrap());
    state
}

fn session_req() -> CreateSessionReq {
    CreateSessionReq {
        snapshot: "g".into(),
        policy: PolicySpec::DeployAll,
        world_seed: 17,
    }
}

/// Drives `token` to completion via server-simulated observations,
/// appending each committed seed to `seeds`; returns the final ledger JSON.
fn drive<C: ProtocolClient>(client: &mut C, token: &str, seeds: &mut Vec<u32>) -> Json {
    loop {
        match client.next(token).unwrap() {
            None => {
                return client
                    .call("GET", &format!("/sessions/{token}/ledger"), &Json::obj([]))
                    .unwrap()
            }
            Some(batch) => {
                let seed = batch[0];
                seeds.push(seed);
                client
                    .observe(token, &ObserveReq::Simulate { seed })
                    .unwrap();
            }
        }
    }
}

#[test]
fn killed_mid_session_server_recovers_bit_for_bit_from_the_journal() {
    let mut path = std::env::temp_dir();
    path.push(format!("atpm-e2e-journal-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journal_cfg = ServeConfig {
        journal_path: Some(path.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    };

    // Reference: the identical session driven uninterrupted and journal-free
    // through the in-process client (the protocol-equivalence oracle).
    let mut reference_seeds = Vec::new();
    let reference_ledger = {
        let mut client = LocalClient::new(state_with_snapshot());
        let token = client.create_session(&session_req()).unwrap();
        drive(&mut client, &token, &mut reference_seeds)
    };

    // Server A: two observed rounds, then a `next` whose seed is committed
    // (and journaled) but never observed — and the process "dies": the
    // server is leaked, so no graceful drain, shutdown, or fsync runs.
    let (token, pending, mut seeds_so_far) = {
        let server = Server::start(state_with_snapshot(), &journal_cfg).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let token = client.create_session(&session_req()).unwrap();
        let mut seeds = Vec::new();
        for _ in 0..2 {
            let seed = client.next(&token).unwrap().unwrap()[0];
            seeds.push(seed);
            client
                .observe(&token, &ObserveReq::Simulate { seed })
                .unwrap();
        }
        let pending = client.next(&token).unwrap().unwrap()[0];
        std::mem::forget(server); // kill -9, as close as one process gets
        (token, pending, seeds)
    };
    assert_eq!(seeds_so_far, reference_seeds[..2]);
    assert_eq!(pending, reference_seeds[2], "pending seed diverged");

    // Server B: fresh state, same snapshot build, same journal.
    let mut server = Server::start(state_with_snapshot(), &journal_cfg).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let health = client.call("GET", "/healthz", &Json::obj([])).unwrap();
    assert_eq!(
        health.get("recovered_sessions").and_then(Json::as_u64),
        Some(1),
        "healthz must report the recovered session"
    );
    // The client retries the `next` whose reply the crash may have eaten:
    // idempotent — the same committed seed comes back, not a 409.
    let retried = client.next(&token).unwrap().unwrap();
    assert_eq!(
        retried,
        vec![pending],
        "retried next must re-serve the pending seed"
    );
    seeds_so_far.push(pending);
    client
        .observe(&token, &ObserveReq::Simulate { seed: pending })
        .unwrap();
    let ledger = drive(&mut client, &token, &mut seeds_so_far);

    assert_eq!(
        seeds_so_far, reference_seeds,
        "recovered session must replay the exact seed sequence"
    );
    let profit = |l: &Json| l.get("profit").and_then(Json::as_f64).unwrap();
    assert_eq!(
        profit(&ledger).to_bits(),
        profit(&reference_ledger).to_bits(),
        "recovered profit ledger must be bit-equal"
    );
    assert_eq!(
        ledger.get("total_activated").and_then(Json::as_u64),
        reference_ledger
            .get("total_activated")
            .and_then(Json::as_u64)
    );
    assert_eq!(ledger.get("selected"), reference_ledger.get("selected"));

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn killed_mid_batch_server_reserves_the_exact_pending_batch() {
    use atpm_serve::protocol::ObserveBatchReq;
    let mut path = std::env::temp_dir();
    path.push(format!("atpm-e2e-journal-batch-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journal_cfg = ServeConfig {
        journal_path: Some(path.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    };
    let batch_req = || CreateSessionReq {
        snapshot: "g".into(),
        policy: PolicySpec::ThresholdBatch {
            theta: 2_000,
            eps: 0.1,
            batch: 3,
            seed: 11,
            threads: 1,
        },
        world_seed: 17,
    };

    // Reference: the identical batched session driven uninterrupted,
    // journal-free, in process.
    let reference_ledger = {
        let mut client = LocalClient::new(state_with_snapshot());
        client.run_session_batched(&batch_req(), 3).unwrap()
    };

    // Server A: one observed batch round, then a batch whose seeds were
    // committed (and journaled) but never observed — then kill -9.
    let (token, pending) = {
        let server = Server::start(state_with_snapshot(), &journal_cfg).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let token = client.create_session(&batch_req()).unwrap();
        let seeds = client.next_batch(&token, 3).unwrap().unwrap();
        client
            .observe_batch(&token, &ObserveBatchReq::Simulate { seeds })
            .unwrap();
        let pending = client.next_batch(&token, 3).unwrap();
        std::mem::forget(server); // no drain, no shutdown, no fsync
        (token, pending)
    };

    // Server B: fresh state, same snapshot build, same journal. The
    // client's retried next_batch must re-serve the exact pending batch —
    // same seeds, same order — not a 409 and not a fresh decision.
    let mut server = Server::start(state_with_snapshot(), &journal_cfg).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let retried = client.next_batch(&token, 3).unwrap();
    assert_eq!(
        retried, pending,
        "retried next_batch must re-serve the pending batch verbatim"
    );
    if let Some(seeds) = retried {
        client
            .observe_batch(&token, &ObserveBatchReq::Simulate { seeds })
            .unwrap();
    }
    while let Some(seeds) = client.next_batch(&token, 3).unwrap() {
        client
            .observe_batch(&token, &ObserveBatchReq::Simulate { seeds })
            .unwrap();
    }
    let ledger = client.ledger(&token).unwrap();
    assert_eq!(
        ledger.selected, reference_ledger.selected,
        "recovered batch session must select the exact seed sequence"
    );
    assert_eq!(
        ledger.profit.to_bits(),
        reference_ledger.profit.to_bits(),
        "recovered profit ledger must be bit-equal"
    );
    assert_eq!(ledger.rounds, reference_ledger.rounds);
    assert_eq!(ledger.total_activated, reference_ledger.total_activated);

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Recovery fuzz: journal and checkpoint files mutilated at every byte.
/// The invariants under test — recovery must *never* panic, must never
/// invent records, and whatever it does return must be an exact committed
/// prefix (globally for a single segment; per session once a checkpoint is
/// involved).
mod fuzz {
    use super::*;
    use atpm_serve::journal::{FsyncPolicy, Journal, RealIo, Record};
    use atpm_serve::manager::SessionManager;
    use std::collections::HashMap;
    use std::path::{Path, PathBuf};

    fn tmpdir(tag: &str) -> PathBuf {
        let mut d = std::env::temp_dir();
        d.push(format!("atpm-fuzz-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_records() -> Vec<Record> {
        let mut records = vec![Record::Create {
            id: 1,
            token: "s-1".into(),
            req: session_req(),
        }];
        for round in 0..3u32 {
            records.push(Record::Next {
                token: "s-1".into(),
                seeds: vec![round * 7 + 1],
                done: false,
            });
            records.push(Record::Observe {
                token: "s-1".into(),
                req: ObserveReq::Simulate {
                    seed: round * 7 + 1,
                },
            });
        }
        records.push(Record::Delete {
            token: "s-1".into(),
        });
        records
    }

    /// Appends `records` to a fresh journal at `path`, returning the file
    /// offset at which each record's frame ends.
    fn record_journal(path: &Path, records: &[Record]) -> Vec<u64> {
        let (journal, existing) =
            Journal::open_with(path, FsyncPolicy::Shutdown, Arc::new(RealIo)).unwrap();
        assert!(existing.is_empty());
        let ends = records
            .iter()
            .map(|r| {
                journal.append(r).unwrap();
                journal.bytes()
            })
            .collect();
        journal.sync().unwrap();
        ends
    }

    fn open_must_not_panic(path: &Path, context: &str) -> std::io::Result<(Journal, Vec<Record>)> {
        let path = path.to_path_buf();
        std::panic::catch_unwind(move || {
            Journal::open_with(&path, FsyncPolicy::Shutdown, Arc::new(RealIo))
        })
        .unwrap_or_else(|_| panic!("recovery panicked: {context}"))
    }

    #[test]
    fn truncating_the_journal_at_every_offset_recovers_the_exact_committed_prefix() {
        let dir = tmpdir("trunc");
        let master = dir.join("journal");
        let records = sample_records();
        let ends = record_journal(&master, &records);
        let bytes = std::fs::read(&master).unwrap();
        assert_eq!(*ends.last().unwrap(), bytes.len() as u64);

        for len in 0..=bytes.len() {
            let victim = dir.join(format!("t{len}"));
            std::fs::write(&victim, &bytes[..len]).unwrap();
            let result = open_must_not_panic(&victim, &format!("truncation at byte {len}"));
            if len == 0 {
                // An empty file is a fresh journal, not a corrupt one.
                assert!(result.unwrap().1.is_empty());
                continue;
            }
            if len < 8 {
                // A torn-mid-magic file is indistinguishable from a foreign
                // file: refusing to serve beats guessing.
                assert!(result.is_err(), "partial magic (len {len}) must refuse");
                continue;
            }
            let (journal, recovered) = result.unwrap();
            let committed = ends.iter().filter(|&&end| end <= len as u64).count();
            assert_eq!(
                recovered,
                records[..committed],
                "truncation at byte {len} must recover exactly the committed prefix"
            );
            let torn = !journal.open_info().torn.is_empty();
            let at_boundary = len == 8 || ends.contains(&(len as u64));
            assert_eq!(
                torn, !at_boundary,
                "torn tail at byte {len} must be reported iff mid-frame"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_bit_flips_never_panic_and_never_invent_records() {
        let dir = tmpdir("flip");
        let master = dir.join("journal");
        let records = sample_records();
        record_journal(&master, &records);
        let bytes = std::fs::read(&master).unwrap();

        for offset in 0..bytes.len() {
            for bit in [0u8, 7] {
                let mut mutated = bytes.clone();
                mutated[offset] ^= 1 << bit;
                let victim = dir.join("flip");
                std::fs::write(&victim, &mutated).unwrap();
                let context = format!("bit {bit} of byte {offset} flipped");
                let result = open_must_not_panic(&victim, &context);
                if offset < 8 {
                    assert!(result.is_err(), "{context}: bad magic must refuse");
                    continue;
                }
                // CRC32 detects every single-bit error, so the flipped
                // frame (and everything after it) is truncated away — the
                // survivors are an exact committed prefix, never a
                // reordering, never invented data.
                let (_, recovered) = result.unwrap_or_else(|e| panic!("{context}: {e}"));
                assert!(
                    recovered.len() < records.len(),
                    "{context}: the flipped frame must not survive"
                );
                assert_eq!(
                    recovered,
                    records[..recovered.len()],
                    "{context}: survivors must be an exact committed prefix"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Builds a journaled state with two live sessions, checkpoints it, and
    /// appends a post-checkpoint tail — the on-disk shape recovery merges
    /// (checkpoint + active segment).
    fn checkpointed_state(dir: &Path) -> (Arc<AppState>, PathBuf, PathBuf) {
        let journal_path = dir.join("journal");
        let state = state_with_snapshot();
        let (journal, existing) =
            Journal::open_with(&journal_path, FsyncPolicy::Shutdown, Arc::new(RealIo)).unwrap();
        assert!(existing.is_empty());
        state.manager.attach_journal(Arc::new(journal));
        let mut client = LocalClient::new(state.clone());

        // Session A: two observed rounds. Session B: one observed round
        // plus a handed-out-but-unobserved seed (pending survives the
        // checkpoint).
        let a = client.create_session(&session_req()).unwrap();
        let b = client
            .create_session(&CreateSessionReq {
                world_seed: 23,
                ..session_req()
            })
            .unwrap();
        for _ in 0..2 {
            let seed = client.next(&a).unwrap().unwrap()[0];
            client.observe(&a, &ObserveReq::Simulate { seed }).unwrap();
        }
        let seed = client.next(&b).unwrap().unwrap()[0];
        client.observe(&b, &ObserveReq::Simulate { seed }).unwrap();
        let _pending = client.next(&b).unwrap().unwrap()[0];

        assert_eq!(state.manager.checkpoint().unwrap(), 2);

        // Post-checkpoint tail: one more observed round for A.
        let seed = client.next(&a).unwrap().unwrap()[0];
        client.observe(&a, &ObserveReq::Simulate { seed }).unwrap();

        let ckp_path = dir.join("journal.ckp");
        assert!(ckp_path.exists(), "checkpoint file must exist");
        (state, journal_path, ckp_path)
    }

    /// Per-token record sequences, for prefix comparison.
    fn by_token(records: &[Record]) -> HashMap<String, Vec<Record>> {
        let mut map: HashMap<String, Vec<Record>> = HashMap::new();
        for r in records {
            let token = match r {
                Record::Create { token, .. }
                | Record::Next { token, .. }
                | Record::NextBatch { token, .. }
                | Record::Observe { token, .. }
                | Record::ObserveBatch { token, .. }
                | Record::Delete { token } => token.clone(),
            };
            map.entry(token).or_default().push(r.clone());
        }
        map
    }

    #[test]
    fn mutilating_the_checkpoint_never_panics_and_never_corrupts_a_session() {
        let dir = tmpdir("ckp");
        let (state, journal_path, ckp_path) = checkpointed_state(&dir);
        let journal_bytes = std::fs::read(&journal_path).unwrap();
        let ckp_bytes = std::fs::read(&ckp_path).unwrap();

        // Intact baseline: what a clean reopen recovers.
        let work = dir.join("work");
        std::fs::create_dir_all(&work).unwrap();
        let victim = work.join("journal");
        let victim_ckp = work.join("journal.ckp");
        std::fs::write(&victim, &journal_bytes).unwrap();
        std::fs::write(&victim_ckp, &ckp_bytes).unwrap();
        let (_, intact) = open_must_not_panic(&victim, "intact baseline").unwrap();
        let intact_by_token = by_token(&intact);
        assert_eq!(intact_by_token.len(), 2, "both sessions must recover");

        // Every truncation length, and a bit flip in every byte. The
        // journal (active segment) stays intact; only the checkpoint file
        // is mutilated.
        let mut cases: Vec<(String, Vec<u8>)> = (0..=ckp_bytes.len())
            .map(|len| (format!("ckp truncated at {len}"), ckp_bytes[..len].to_vec()))
            .collect();
        for offset in 0..ckp_bytes.len() {
            let mut mutated = ckp_bytes.clone();
            mutated[offset] ^= 0x01;
            cases.push((format!("ckp bit flip at {offset}"), mutated));
        }

        for (context, mutated) in cases {
            std::fs::write(&victim, &journal_bytes).unwrap();
            std::fs::write(&victim_ckp, &mutated).unwrap();
            // A corrupt checkpoint must degrade recovery, never fail the
            // boot: whatever sessions survive its committed prefix recover
            // exactly; the rest are lost, not mangled.
            let (_, recovered) = open_must_not_panic(&victim, &context)
                .unwrap_or_else(|e| panic!("{context}: boot must not fail: {e}"));
            for (token, sequence) in by_token(&recovered) {
                let intact_seq = &intact_by_token[&token];
                if sequence.iter().any(|r| matches!(r, Record::Create { .. })) {
                    assert_eq!(
                        &sequence, intact_seq,
                        "{context}: session {token} must recover exactly or not at all"
                    );
                } else {
                    // Tail records whose checkpoint frame was lost: they
                    // must still be *committed* records, in order.
                    let tail_len = sequence.len();
                    assert_eq!(
                        sequence,
                        intact_seq[intact_seq.len() - tail_len..],
                        "{context}: orphan tail for {token} must match the committed tail"
                    );
                }
            }
            // And the session manager must shrug off whatever shape came
            // back — orphan tails, half-lost sessions — without panicking.
            let manager = SessionManager::new(state.store.clone());
            manager.recover(&recovered);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
