//! `/debug/*` endpoint integration suite: the on-demand CPU profile
//! window and the structured request event log, end-to-end over HTTP.
//!
//! The profiler (SIGPROF + per-process itimer) and its sample buffer are
//! process-wide singletons, so the two tests serialize on one mutex.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use atpm_serve::server::{AppState, Backend, ServeConfig, Server};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    SERIAL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn boot(backend: Backend) -> Server {
    let cfg = ServeConfig {
        workers: 2,
        shards: 1,
        backend,
        ..ServeConfig::default()
    };
    Server::start(AppState::new(), &cfg).unwrap()
}

/// One request on a fresh connection; returns (status, headers, body).
fn get(addr: std::net::SocketAddr, path: &str, extra: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nhost: atpm\r\n{extra}connection: close\r\ncontent-length: 0\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

#[test]
fn debug_profile_returns_parseable_folded_stacks() {
    let _guard = serial();
    let server = {
        let s = boot(Backend::Epoll);
        // Burn CPU for the whole profile window so the process-CPU-time
        // itimer actually fires: SIGPROF only ticks while the process
        // runs, and an idle server accumulates no samples.
        let stop = Arc::new(AtomicBool::new(false));
        let burner = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut x = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..1_000_000 {
                        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    }
                    std::hint::black_box(x);
                }
            })
        };
        let (status, _, body) = get(s.addr(), "/debug/profile?seconds=1", "");
        stop.store(true, Ordering::Relaxed);
        burner.join().unwrap();
        assert_eq!(status, 200, "profile window failed: {body}");
        assert!(!body.trim().is_empty(), "folded output must be non-empty");
        // Every line must parse as `frame(;frame)* count`.
        for line in body.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
            assert!(!stack.is_empty(), "empty stack in {line:?}");
            count
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("bad count in {line:?}"));
        }
        s
    };
    let mut server = server;
    server.shutdown();
}

#[test]
fn debug_events_tails_request_records_with_matching_ids() {
    let _guard = serial();
    for backend in [Backend::Pool, Backend::Epoll] {
        let mut server = boot(backend);
        let (status, head, _) = get(server.addr(), "/healthz", "x-request-id: evt-test-1\r\n");
        assert_eq!(status, 200);
        assert!(head.contains("x-request-id: evt-test-1"), "{head}");
        get(server.addr(), "/nope", "x-request-id: evt-test-2\r\n");

        let (status, _, body) = get(server.addr(), "/debug/events?n=10", "");
        assert_eq!(status, 200, "{backend:?}");
        // The tail lists the requests above — but never itself: events
        // record strictly after respond renders.
        assert!(
            body.contains("id=evt-test-1") && body.contains("status=200"),
            "{backend:?} missing healthz record:\n{body}"
        );
        assert!(
            body.contains("id=evt-test-2") && body.contains("status=404"),
            "{backend:?} missing 404 record:\n{body}"
        );
        assert!(
            body.contains("GET /healthz"),
            "{backend:?} detail missing:\n{body}"
        );
        assert!(
            !body.contains("GET /debug/events"),
            "{backend:?} events tail observed itself:\n{body}"
        );
        server.shutdown();
    }
}
