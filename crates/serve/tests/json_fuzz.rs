//! Property-fuzz for the JSON codec: the parser sits directly on untrusted
//! request bodies, so its contract is *total* — any input, hostile or
//! truncated, returns `Ok` or `Err`. It must never panic, and never
//! overflow the stack (a panic costs one request via `catch_unwind`; an
//! overflow aborts the whole server).

use atpm_serve::json::Json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Arbitrary JSON documents of bounded depth, biased toward the characters
/// that stress the escaper (quotes, backslashes, control bytes, braces).
struct ArbJson {
    depth: u32,
}

impl Strategy for ArbJson {
    type Value = Json;

    fn gen_value(&self, rng: &mut StdRng) -> Json {
        let scalar_only = self.depth == 0;
        match rng.gen_range(0..if scalar_only { 5 } else { 7 }) {
            0 => Json::Null,
            1 => Json::Bool(rng.gen()),
            2 => Json::UInt(rng.gen()),
            // Finite floats only: NaN/inf have no JSON spelling.
            3 => Json::Num((rng.gen_range(-1.0e9..1.0e9f64) * 1000.0).round() / 1000.0),
            4 => Json::Str(arb_string(rng)),
            5 => {
                let n = rng.gen_range(0..4);
                let child = ArbJson {
                    depth: self.depth - 1,
                };
                Json::Arr((0..n).map(|_| child.gen_value(rng)).collect())
            }
            _ => {
                let n = rng.gen_range(0..4);
                let child = ArbJson {
                    depth: self.depth - 1,
                };
                Json::Obj(
                    (0..n)
                        .map(|_| (arb_string(rng), child.gen_value(rng)))
                        .collect(),
                )
            }
        }
    }
}

fn arb_string(rng: &mut StdRng) -> String {
    const ALPHABET: &[u8] = b"ab\"\\/{}[]:,0\x01\x1f\n\t ";
    let len = rng.gen_range(0..10);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw byte soup: the parser returns, whatever the input.
    #[test]
    fn arbitrary_bytes_never_panic_the_parser(
        bytes in proptest::collection::vec(0u8..=255, 0..256)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text); // Ok or Err — both fine; panics are not.
    }

    /// Well-formed documents survive an encode/parse round trip exactly.
    #[test]
    fn generated_documents_round_trip(doc in ArbJson { depth: 3 }) {
        let encoded = doc.encode();
        let parsed = Json::parse(&encoded).expect("own encoding must parse");
        prop_assert_eq!(parsed, doc);
    }

    /// Every proper prefix of a container document is unbalanced, so it
    /// must error — and, like all inputs, never panic.
    #[test]
    fn truncated_documents_error(doc in ArbJson { depth: 2 }) {
        let encoded = Json::obj([("d", doc)]).encode();
        for cut in 0..encoded.len() {
            if let Some(prefix) = encoded.get(..cut) {
                prop_assert!(
                    Json::parse(prefix).is_err(),
                    "prefix {prefix:?} of {encoded:?} parsed"
                );
            }
        }
    }

    /// Single-byte corruption anywhere in a valid document never panics.
    #[test]
    fn mutated_documents_never_panic(
        doc in ArbJson { depth: 2 },
        idx in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let mut bytes = Json::obj([("d", doc)]).encode().into_bytes();
        let at = idx % bytes.len();
        bytes[at] ^= flip;
        let _ = Json::parse(&String::from_utf8_lossy(&bytes));
    }
}

#[test]
fn pathological_nesting_is_rejected_without_stack_overflow() {
    // 100k unclosed brackets: the recursive-descent parser must refuse at
    // its depth cap, long before the stack would blow.
    let brackets = "[".repeat(100_000);
    assert!(Json::parse(&brackets).is_err());
    let braces = "{\"a\":".repeat(100_000);
    assert!(Json::parse(&braces).is_err());
    // Even fully balanced nesting past the cap is rejected — depth is a
    // resource limit, not a syntax check.
    let balanced = format!("{}{}", "[".repeat(1_000), "]".repeat(1_000));
    assert!(Json::parse(&balanced).is_err());
    // And a document inside the cap still parses.
    let ok = format!("{}1{}", "[".repeat(30), "]".repeat(30));
    assert!(Json::parse(&ok).is_ok());
}
