//! Overload control under the epoll backend: a burst far beyond worker
//! capacity must keep the reactor→worker queue bounded — excess requests
//! are answered `503 Service Unavailable` with `Retry-After` immediately
//! instead of queueing without limit, the shed count shows up in
//! `/healthz`, and the server keeps serving normally afterwards.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use atpm_serve::client::{HttpClient, ProtocolClient};
use atpm_serve::json::Json;
use atpm_serve::protocol::{SnapshotReq, SnapshotSource};
use atpm_serve::server::{AppState, Backend, ServeConfig, Server};
use atpm_serve::snapshot::Snapshot;

const BURST: usize = 12;

fn state_with_snapshot() -> Arc<AppState> {
    let state = AppState::new();
    state.store.insert(
        Snapshot::build(&SnapshotReq {
            name: "g".into(),
            source: SnapshotSource::Preset {
                dataset: "nethept".into(),
                scale: 0.02,
            },
            k: 4,
            rr_theta: 4_000,
            seed: 1,
            threads: 1,
        })
        .unwrap(),
    );
    state
}

/// One request on its own connection; returns (status, raw headers+body).
fn one_shot(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, text)
}

#[test]
fn burst_past_capacity_sheds_503_with_retry_after_and_recovers() {
    if !atpm_net::supported() {
        return; // shedding lives in the epoll dispatch path
    }
    // One worker, queue bounded at 2: capacity is 3 in-flight requests
    // (1 executing + 2 waiting); a 12-request burst is 4x that.
    let state = state_with_snapshot();
    let cfg = ServeConfig {
        workers: 1,
        shards: 1,
        backend: Backend::Epoll,
        max_queue: 2,
        ..ServeConfig::default()
    };
    let mut server = Server::start(state, &cfg).unwrap();
    assert_eq!(server.backend(), Backend::Epoll);
    let addr = server.addr();

    // Plug the single worker with a genuinely slow request (an RR-index
    // build) so the burst below deterministically finds it busy.
    let plug = std::thread::spawn(move || {
        let build = SnapshotReq {
            name: "big".into(),
            source: SnapshotSource::Preset {
                dataset: "nethept".into(),
                scale: 0.10,
            },
            k: 8,
            rr_theta: 400_000,
            seed: 3,
            threads: 1,
        };
        one_shot(addr, "POST", "/snapshots", &build.to_json().encode())
    });
    std::thread::sleep(Duration::from_millis(100)); // worker is now mid-build

    let barrier = Arc::new(Barrier::new(BURST));
    let estimate = Json::obj([("nodes", Json::nums((0u32..100).collect::<Vec<_>>()))]).encode();
    let clients: Vec<_> = (0..BURST)
        .map(|_| {
            let barrier = barrier.clone();
            let body = estimate.clone();
            std::thread::spawn(move || {
                barrier.wait();
                one_shot(addr, "POST", "/snapshots/g/estimate", &body)
            })
        })
        .collect();
    let results: Vec<(u16, String)> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let (status, _) = plug.join().unwrap();
    assert_eq!(status, 201, "the plugging build itself must succeed");

    let shed = results.iter().filter(|(s, _)| *s == 503).count();
    let served = results.iter().filter(|(s, _)| *s == 200).count();
    assert_eq!(shed + served, BURST, "unexpected statuses: {results:?}");
    // Queue bound 2 → at most 1 executing + 2 queued survive the burst.
    assert!(
        shed >= BURST - 4,
        "expected most of the burst shed, got {shed} of {BURST}"
    );
    assert!(
        served >= 1,
        "bounded queue must still serve what it accepted"
    );
    for (status, raw) in &results {
        if *status == 503 {
            let head = raw.split("\r\n\r\n").next().unwrap();
            assert!(
                head.contains("retry-after: 1"),
                "503 must carry Retry-After: {head}"
            );
            assert!(raw.contains("overloaded"));
        }
    }

    // The overload was transient: healthz reports the sheds, an empty
    // queue, and new requests succeed.
    let mut health_client = HttpClient::connect(addr).unwrap();
    let health = health_client
        .call("GET", "/healthz", &Json::obj([]))
        .unwrap();
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        health.get("queue_depth").and_then(Json::as_u64),
        Some(0),
        "queue must drain back to empty"
    );
    assert_eq!(health.get("max_queue").and_then(Json::as_u64), Some(2));
    assert!(
        health.get("shed_503").and_then(Json::as_u64).unwrap() >= shed as u64,
        "healthz must account for the sheds"
    );
    let (status, _) = one_shot(addr, "POST", "/snapshots/g/estimate", &estimate);
    assert_eq!(status, 200, "service must be healthy after the burst");
    server.shutdown();
}
