//! Disk-fault chaos, end to end over real sockets: injected journal I/O
//! failures (failing fsync, ENOSPC writes) must flip the server into
//! degraded mode — mutating session routes answer `503 + Retry-After`,
//! read routes and the observability surface keep serving, and nothing
//! ever crashes or silently acks. Plus the happy-path durability drills:
//! checkpoint + tail recovery is bit-equal, a failed shutdown fsync is
//! surfaced to the exit path, and a torn tail is counted and logged.
//!
//! Named in the CI chaos job: these tests pin the acceptance criteria of
//! the durability overhaul (degraded-mode 503s, kill−9 recovery).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use atpm_serve::client::{HttpClient, LocalClient, ProtocolClient};
use atpm_serve::journal::{FaultIo, FsyncPolicy, IoSite, Journal, RealIo};
use atpm_serve::json::Json;
use atpm_serve::protocol::{CreateSessionReq, ObserveReq, PolicySpec, SnapshotReq, SnapshotSource};
use atpm_serve::server::{AppState, ServeConfig, Server};
use atpm_serve::snapshot::Snapshot;

fn snapshot_req() -> SnapshotReq {
    SnapshotReq {
        name: "g".into(),
        source: SnapshotSource::Preset {
            dataset: "nethept".into(),
            scale: 0.02,
        },
        k: 5,
        rr_theta: 5_000,
        seed: 1,
        threads: 1,
    }
}

fn state_with_snapshot() -> Arc<AppState> {
    let state = AppState::new();
    state
        .store
        .insert(Snapshot::build(&snapshot_req()).unwrap());
    state
}

fn session_req() -> CreateSessionReq {
    CreateSessionReq {
        snapshot: "g".into(),
        policy: PolicySpec::DeployAll,
        world_seed: 17,
    }
}

fn tmppath(tag: &str) -> std::path::PathBuf {
    let mut d = std::env::temp_dir();
    d.push(format!("atpm-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d.join("journal")
}

/// One raw HTTP exchange, returning the full response text (status line,
/// headers, body) — the JSON clients hide headers, and degraded-mode
/// `Retry-After` is a header-level contract.
fn raw_call(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    text
}

/// Boots a journal-less server, then hands the manager a journal over the
/// scripted [`FaultIo`] — the route surface sees a real journaling server,
/// but every file op can be made to fail on cue.
fn server_with_fault_journal(
    policy: FsyncPolicy,
    io: FaultIo,
    tag: &str,
) -> (Server, Arc<AppState>) {
    let path = tmppath(tag);
    let state = state_with_snapshot();
    let (journal, existing) = Journal::open_with(&path, policy, Arc::new(io)).unwrap();
    assert!(existing.is_empty());
    state.manager.attach_journal(Arc::new(journal));
    let server = Server::start(state.clone(), &ServeConfig::default()).unwrap();
    (server, state)
}

#[test]
fn failed_fsync_degrades_mutations_to_503_with_retry_after_but_reads_keep_serving() {
    // fsync 1 = session create, 2 = next; the 3rd (observe) fails.
    let io = FaultIo::new().fail(IoSite::Fsync, 3, atpm_net::fault::ENOSPC);
    let (mut server, state) = server_with_fault_journal(FsyncPolicy::Always, io, "fsyncfail");
    let addr = server.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    let token = client.create_session(&session_req()).unwrap();
    let seed = client.next(&token).unwrap().unwrap()[0];

    // The observe's durability barrier fails: the transition may not be on
    // disk, so it must NOT be acked — fsyncgate semantics, no
    // retry-and-pretend.
    let resp = raw_call(
        addr,
        "POST",
        &format!("/sessions/{token}/observe"),
        &ObserveReq::Simulate { seed }.to_json().encode(),
    );
    assert!(
        resp.starts_with("HTTP/1.1 503"),
        "failed fsync must refuse the ack, got:\n{resp}"
    );
    assert!(
        resp.to_ascii_lowercase().contains("retry-after: 1"),
        "degraded 503 must carry Retry-After, got:\n{resp}"
    );
    assert!(resp.contains("journal degraded"), "got:\n{resp}");
    assert!(state.manager.journal_degraded());

    // Every later mutation is refused fast by the degraded gate...
    for (method, path, body) in [
        (
            "POST",
            "/sessions".to_string(),
            session_req().to_json().encode(),
        ),
        ("POST", format!("/sessions/{token}/next"), String::new()),
        (
            "POST",
            format!("/sessions/{token}/next_batch"),
            r#"{"k":4}"#.to_string(),
        ),
        (
            "POST",
            format!("/sessions/{token}/observe_batch"),
            format!(r#"{{"seeds":[{seed}],"simulate":true}}"#),
        ),
        ("DELETE", format!("/sessions/{token}"), String::new()),
    ] {
        let resp = raw_call(addr, method, &path, &body);
        assert!(
            resp.starts_with("HTTP/1.1 503") && resp.to_ascii_lowercase().contains("retry-after"),
            "{method} {path} must answer 503 + Retry-After while degraded, got:\n{resp}"
        );
    }

    // ...while reads and the observability surface keep serving.
    let ledger = client
        .call("GET", &format!("/sessions/{token}/ledger"), &Json::obj([]))
        .unwrap();
    assert!(ledger.get("profit").is_some());
    let health = client.call("GET", "/healthz", &Json::obj([])).unwrap();
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        health.get("journal_degraded").and_then(Json::as_bool),
        Some(true),
        "healthz must report the degraded journal"
    );
    assert_eq!(
        health.get("fsync_policy").and_then(Json::as_str),
        Some("always")
    );
    let metrics = raw_call(addr, "GET", "/metrics", "");
    assert!(metrics.contains("atpm_serve_journal_fault_injected_total{site=\"fsync\"}"));

    // Graceful shutdown's final barrier hits the poisoned journal: the
    // durability failure reaches the exit path instead of vanishing.
    server.shutdown();
    assert!(
        server.durability_error().is_some(),
        "shutdown must surface the lost durability"
    );
}

#[test]
fn enospc_on_append_refuses_the_mutation_and_degrades() {
    // Write 1 is the fresh magic, 2 the create; the 3rd (next) fails.
    let io = FaultIo::new().fail(IoSite::Write, 3, atpm_net::fault::ENOSPC);
    let (mut server, state) = server_with_fault_journal(FsyncPolicy::Shutdown, io, "enospc");
    let addr = server.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    let token = client.create_session(&session_req()).unwrap();
    let mut refused = 0;
    for path in [
        format!("/sessions/{token}/next"),
        format!("/sessions/{token}/next"),
    ] {
        let resp = raw_call(addr, "POST", &path, "");
        if resp.starts_with("HTTP/1.1 503") {
            refused += 1;
            assert!(
                resp.to_ascii_lowercase().contains("retry-after: 1"),
                "ENOSPC 503 must carry Retry-After, got:\n{resp}"
            );
        }
    }
    assert!(refused >= 1, "the ENOSPC append must surface as a 503");
    assert!(state.manager.journal_degraded());
    server.shutdown();
    assert!(server.durability_error().is_some());
}

#[test]
fn checkpoint_plus_tail_recovery_is_bit_equal_after_a_kill() {
    let path = tmppath("ckp-kill");
    let cfg = ServeConfig {
        journal_path: Some(path.to_string_lossy().into_owned()),
        fsync: FsyncPolicy::Group(1),
        checkpoint_every_ms: 0, // driven by hand below
        ..ServeConfig::default()
    };

    // Reference: the same session, uninterrupted and journal-free.
    let mut reference_seeds = Vec::new();
    let reference_profit = {
        let mut client = LocalClient::new(state_with_snapshot());
        let token = client.create_session(&session_req()).unwrap();
        loop {
            match client.next(&token).unwrap() {
                None => {
                    let ledger = client
                        .call("GET", &format!("/sessions/{token}/ledger"), &Json::obj([]))
                        .unwrap();
                    break ledger.get("profit").and_then(Json::as_f64).unwrap();
                }
                Some(batch) => {
                    reference_seeds.push(batch[0]);
                    client
                        .observe(&token, &ObserveReq::Simulate { seed: batch[0] })
                        .unwrap();
                }
            }
        }
    };

    // Server A: two rounds, checkpoint, one more round — then die without
    // drain or shutdown barrier (group fsync already made the acks
    // durable).
    let token = {
        let state = state_with_snapshot();
        let server = Server::start(state.clone(), &cfg).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let token = client.create_session(&session_req()).unwrap();
        for _ in 0..2 {
            let seed = client.next(&token).unwrap().unwrap()[0];
            client
                .observe(&token, &ObserveReq::Simulate { seed })
                .unwrap();
        }
        assert_eq!(state.manager.checkpoint().unwrap(), 1);
        let seed = client.next(&token).unwrap().unwrap()[0];
        client
            .observe(&token, &ObserveReq::Simulate { seed })
            .unwrap();
        std::mem::forget(server); // kill -9, as close as one process gets
        token
    };

    // Server B recovers from checkpoint + journal tail.
    let mut server = Server::start(state_with_snapshot(), &cfg).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let health = client.call("GET", "/healthz", &Json::obj([])).unwrap();
    assert_eq!(
        health.get("recovered_sessions").and_then(Json::as_u64),
        Some(1)
    );
    assert!(
        health
            .get("last_checkpoint_seq")
            .and_then(Json::as_u64)
            .unwrap()
            > 0,
        "healthz must report the checkpoint watermark"
    );
    let mut seeds = Vec::new();
    let ledger = loop {
        match client.next(&token).unwrap() {
            None => {
                break client
                    .call("GET", &format!("/sessions/{token}/ledger"), &Json::obj([]))
                    .unwrap()
            }
            Some(batch) => {
                seeds.push(batch[0]);
                client
                    .observe(&token, &ObserveReq::Simulate { seed: batch[0] })
                    .unwrap();
            }
        }
    };
    assert_eq!(
        seeds,
        reference_seeds[3..],
        "recovery must resume the exact seed sequence"
    );
    let profit = ledger.get("profit").and_then(Json::as_f64).unwrap();
    assert_eq!(
        profit.to_bits(),
        reference_profit.to_bits(),
        "recovered profit ledger must be bit-equal to the uninterrupted run"
    );
    server.shutdown();
    assert!(server.durability_error().is_none());
}

#[test]
fn torn_tail_is_counted_and_logged_at_boot() {
    let path = tmppath("torn");
    // A committed record followed by a partial frame — the classic
    // kill−9-mid-append shape.
    {
        let (journal, _) =
            Journal::open_with(&path, FsyncPolicy::Shutdown, Arc::new(RealIo)).unwrap();
        journal
            .append(&atpm_serve::journal::Record::Create {
                id: 1,
                token: "s-1".into(),
                req: session_req(),
            })
            .unwrap();
        journal.sync().unwrap();
    }
    use std::fs::OpenOptions;
    let mut f = OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(&[0x55, 0x21, 0x00, 0x00, 0x00, 0x99]).unwrap();
    drop(f);

    let cfg = ServeConfig {
        journal_path: Some(path.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    };
    let mut server = Server::start(state_with_snapshot(), &cfg).unwrap();
    let addr = server.addr();
    let metrics = raw_call(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("atpm_serve_journal_torn_tail_total 1"),
        "torn tail must be counted, got:\n{}",
        metrics
            .lines()
            .filter(|l| l.contains("torn"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let events = raw_call(addr, "GET", "/debug/events", "");
    assert!(
        events.contains("torn tail truncated"),
        "torn tail must land in the event ring, got:\n{events}"
    );
    server.shutdown();
}
