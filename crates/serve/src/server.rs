//! The TCP front end: the path router, the shared application state, and
//! two interchangeable transport backends behind one [`Server`] type.
//!
//! * [`Backend::Epoll`] (default) — reactor shards from `atpm-net`
//!   multiplex any number of keep-alive connections over a small worker
//!   pool (see [`crate::epoll`]). Connection count and worker count are
//!   decoupled: thousands of mostly-idle campaign clients cost fds, not
//!   threads.
//! * [`Backend::Pool`] — the original fixed accept pool: each worker
//!   `accept`s on the shared listener and owns one connection for its
//!   keep-alive lifetime. One idle client pins one worker, so it scales to
//!   `workers` concurrent connections and no further — kept as the simple,
//!   obviously-correct differential oracle for the reactor
//!   (`tests/http_edge_cases.rs` scripts both and compares bytes).
//!
//! Either way each executing thread owns a [`CoverageScratch`] for the
//! lifetime of the process: estimate queries against a snapshot's
//! pre-frozen RR index reuse it across requests, so the steady-state read
//! path performs zero heap allocation in the coverage oracle (the same
//! discipline the RIS engine enforces in-process). Concurrency across
//! *sessions* comes from the per-session locks in [`SessionManager`].

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use atpm_obs::tracer;
use atpm_ris::CoverageScratch;

use crate::http::{
    read_request, write_response, write_response_ct, write_response_with, ReadOutcome, Request,
};
use crate::journal::{FsyncPolicy, Journal, RealIo};
use crate::json::Json;
use crate::manager::SessionManager;
use crate::metrics::ServeMetrics;
use crate::protocol::{
    nodes_field, ApiError, CreateSessionReq, NextBatchReq, ObserveBatchReq, ObserveReq, SnapshotReq,
};
use crate::snapshot::{Snapshot, SnapshotStore};

/// Everything the routes need: snapshot store + session manager + the
/// metrics registry both `/healthz` and `/metrics` read from.
pub struct AppState {
    /// Named snapshots.
    pub store: Arc<SnapshotStore>,
    /// Live sessions.
    pub manager: SessionManager,
    /// Overload / durability / latency metrics (see [`ServeMetrics`]).
    /// `/healthz` reads the same atomics `/metrics` exports, so the two
    /// endpoints cannot disagree.
    pub metrics: Arc<ServeMetrics>,
    /// Structured request event ring behind `GET /debug/events`.
    pub events: Arc<atpm_obs::EventLog>,
    /// Generated `X-Request-Id` sequence. Consumed only for *parsed*
    /// requests that arrive without a usable client id — never for
    /// malformed input or shed jobs — so fresh-boot id sequences are
    /// byte-identical across the pool and epoll backends.
    request_seq: AtomicU64,
}

impl AppState {
    /// Fresh state with an empty store.
    pub fn new() -> Arc<AppState> {
        let store = Arc::new(SnapshotStore::new());
        let metrics = Arc::new(ServeMetrics::new());
        let manager = SessionManager::new(store.clone());
        manager.bind_metrics(metrics.clone());
        let state = Arc::new(AppState {
            manager,
            store,
            metrics,
            events: Arc::new(atpm_obs::EventLog::with_cap(4_096)),
            request_seq: AtomicU64::new(0),
        });
        state.metrics.bind_state(&state);
        state.metrics.bind_events(&state.events);
        state
    }
}

/// The request's diagnostic id: the client's `X-Request-Id` when it is
/// usable (non-empty, ≤ 64 bytes, RFC 7230 token characters only — it is
/// echoed into a response header, so anything that could smuggle header
/// syntax is refused), else the next generated `req-{seq:016x}`. Both
/// backends call this once per parsed request, before `respond`.
pub(crate) fn request_id(state: &AppState, req: &Request) -> String {
    if let Some(id) = req.header("x-request-id") {
        if valid_request_id(id) {
            return id.to_string();
        }
    }
    format!(
        "req-{:016x}",
        state.request_seq.fetch_add(1, Ordering::Relaxed)
    )
}

/// Whether a client-supplied `X-Request-Id` is safe to echo back.
pub(crate) fn valid_request_id(id: &str) -> bool {
    !id.is_empty() && id.len() <= 64 && id.bytes().all(is_tchar)
}

/// RFC 7230 `tchar`: the characters legal in a token (and therefore safe
/// to echo verbatim inside a header value).
fn is_tchar(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Dispatches one protocol call. Both the HTTP workers and the in-process
/// [`LocalClient`](crate::client::LocalClient) land here, so the two drive
/// paths cannot diverge.
pub fn route(
    state: &AppState,
    method: &str,
    path: &str,
    body: &Json,
    scratch: &mut CoverageScratch,
) -> Result<(u16, Json), ApiError> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    // Degraded mode (fsyncgate semantics): once a durability failure
    // poisoned the journal, mutating session routes stop acking — the disk
    // may not hold what an ack would promise. Read routes, snapshot
    // management, and the observability surface keep serving.
    if matches!(
        (method, segments.as_slice()),
        ("POST", ["sessions"])
            | ("POST", ["sessions", _, "next"])
            | ("POST", ["sessions", _, "next_batch"])
            | ("POST", ["sessions", _, "observe"])
            | ("POST", ["sessions", _, "observe_batch"])
            | ("DELETE", ["sessions", _])
    ) && state.manager.journal_degraded()
    {
        return Err(ApiError::new(
            503,
            "journal degraded; durability lost; mutations disabled",
        ));
    }
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => {
            // Reads the same registry atomics /metrics exports; the body
            // stays byte-identical to the pre-registry format (field order
            // and JSON shapes are pinned by the pool/epoll differential
            // tests).
            let m = &state.metrics;
            // Journal fields are always present — a journal-less manager
            // reports inert defaults, so the pool/epoll differential
            // oracle stays byte-identical.
            let js = state.manager.journal_stats();
            Ok((
                200,
                Json::obj([
                    ("ok", Json::Bool(true)),
                    ("sessions", Json::UInt(state.manager.len() as u64)),
                    ("queue_depth", Json::UInt(m.queue_depth.get().max(0) as u64)),
                    ("max_queue", Json::UInt(m.max_queue.get().max(0) as u64)),
                    ("shed_503", Json::UInt(m.shed_503.get())),
                    ("recovered_sessions", Json::UInt(m.recovered_sessions.get())),
                    ("draining", Json::Bool(m.draining.get() != 0)),
                    ("journal_bytes", Json::UInt(js.bytes)),
                    ("segments", Json::UInt(js.segments)),
                    ("last_checkpoint_seq", Json::UInt(js.last_checkpoint_seq)),
                    ("fsync_policy", Json::Str(js.policy)),
                    ("journal_degraded", Json::Bool(js.degraded)),
                ]),
            ))
        }

        ("GET", ["snapshots"]) => Ok((200, state.store.list_json())),
        ("POST", ["snapshots"]) => {
            let req = SnapshotReq::from_json(body)?;
            let snap = Snapshot::build(&req)?;
            let info = snap.info_json();
            state.store.insert(snap);
            Ok((201, info))
        }
        ("GET", ["snapshots", name]) => {
            let snap = state
                .store
                .get(name)
                .ok_or_else(|| ApiError::not_found("snapshot", name))?;
            Ok((200, snap.info_json()))
        }
        ("DELETE", ["snapshots", name]) => {
            if state.store.remove(name) {
                Ok((200, Json::obj([])))
            } else {
                Err(ApiError::not_found("snapshot", name))
            }
        }
        ("POST", ["snapshots", name, "estimate"]) => {
            let snap = state
                .store
                .get(name)
                .ok_or_else(|| ApiError::not_found("snapshot", name))?;
            let nodes = nodes_field(body, "nodes")?;
            let spread = snap.estimate_spread(&nodes, scratch)?;
            Ok((
                200,
                Json::obj([
                    ("spread", Json::Num(spread)),
                    ("rr_sets", Json::Num(snap.rr.len() as f64)),
                ]),
            ))
        }

        ("POST", ["sessions"]) => {
            let req = CreateSessionReq::from_json(body)?;
            let (token, algorithm, k) = state.manager.create(&req)?;
            Ok((
                201,
                Json::obj([
                    ("session", Json::Str(token)),
                    ("algorithm", Json::Str(algorithm)),
                    ("k", Json::Num(k as f64)),
                ]),
            ))
        }
        ("POST", ["sessions", token, "next"]) => {
            let batch = state.manager.next(token)?;
            Ok((
                200,
                Json::obj([
                    ("seeds", Json::nums(batch.seeds.iter().copied())),
                    ("done", Json::Bool(batch.done)),
                ]),
            ))
        }
        ("POST", ["sessions", token, "next_batch"]) => {
            let req = NextBatchReq::from_json(body)?;
            let batch = state.manager.next_batch(token, req.k)?;
            Ok((
                200,
                Json::obj([
                    ("seeds", Json::nums(batch.seeds.iter().copied())),
                    ("done", Json::Bool(batch.done)),
                ]),
            ))
        }
        ("POST", ["sessions", token, "observe"]) => {
            let req = ObserveReq::from_json(body)?;
            let obs = state.manager.observe(token, &req)?;
            Ok((
                200,
                Json::obj([
                    ("activated", Json::nums(obs.activated.iter().copied())),
                    ("newly_activated", Json::Num(obs.newly_activated as f64)),
                    ("ledger", obs.ledger.to_json()),
                ]),
            ))
        }
        ("POST", ["sessions", token, "observe_batch"]) => {
            let req = ObserveBatchReq::from_json(body)?;
            let obs = state.manager.observe_batch(token, &req)?;
            Ok((
                200,
                Json::obj([
                    ("activated", Json::nums(obs.activated.iter().copied())),
                    ("newly_activated", Json::Num(obs.newly_activated as f64)),
                    ("ledger", obs.ledger.to_json()),
                ]),
            ))
        }
        ("GET", ["sessions", token, "ledger"]) => Ok((200, state.manager.ledger(token)?.to_json())),
        ("DELETE", ["sessions", token]) => {
            if state.manager.delete(token) {
                Ok((200, Json::obj([])))
            } else if state.manager.was_expired(token) {
                Err(ApiError::new(
                    410,
                    format!("session '{token}' expired and was evicted"),
                ))
            } else {
                Err(ApiError::not_found("session", token))
            }
        }

        _ => Err(ApiError::new(404, format!("no route for {method} {path}"))),
    }
}

/// A response payload: the protocol surface is JSON throughout, except
/// `GET /metrics`, which serves the Prometheus text exposition.
pub(crate) enum RespBody {
    /// `application/json` (everything but /metrics).
    Json(Json),
    /// Pre-rendered text with an explicit content type (/metrics).
    Text(&'static str, String),
}

/// Runs `route` on a raw request, folding parse failures and `ApiError`s
/// into JSON error responses. Shared by both backends — the pool workers
/// call it inline, the epoll workers via [`crate::epoll`].
///
/// `GET /metrics` is intercepted here, before the JSON router: the
/// exposition is plain text, and rendering it inside `respond` (while
/// request recording happens strictly after `respond` returns) is what
/// keeps a scrape from observing itself.
pub(crate) fn respond(
    state: &AppState,
    req: &Request,
    scratch: &mut CoverageScratch,
) -> (u16, RespBody) {
    if req.method == "GET" && req.path == "/metrics" {
        return (
            200,
            RespBody::Text(atpm_obs::CONTENT_TYPE, state.metrics.render()),
        );
    }
    if req.method == "GET" && req.path == "/debug/profile" {
        return debug_profile(req);
    }
    if req.method == "GET" && req.path == "/debug/events" {
        let n = req
            .query_param("n")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(100)
            .clamp(1, 4_096);
        return (
            200,
            RespBody::Text("text/plain; charset=utf-8", state.events.render_tail(n)),
        );
    }
    let body = if req.body.is_empty() {
        Ok(Json::obj([]))
    } else {
        std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    };
    let result = match body {
        Ok(body) => {
            // A panicking handler (policy assertion, arithmetic bug) must
            // cost one request, not the worker thread — an unwound worker
            // silently shrinks the accept pool until the server is deaf.
            // The panicked session quarantines itself: its state was taken
            // and not restored, so later calls on it get a clean 500.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(state, &req.method, &req.path, &body, scratch)
            }))
            .unwrap_or_else(|_| Err(ApiError::new(500, "internal error (handler panicked)")))
        }
        Err(msg) => Err(ApiError::bad_request(msg)),
    };
    match result {
        Ok((status, json)) => (status, RespBody::Json(json)),
        Err(e) => (
            e.status,
            RespBody::Json(Json::obj([("error", Json::Str(e.message))])),
        ),
    }
}

/// `GET /debug/profile?seconds=N`: a windowed CPU profile of the running
/// server, as folded stacks (flamegraph.pl / Speedscope input). When the
/// profiler is not armed (`--profile-hz 0`, the default) it is armed at
/// 99 Hz for the window and disarmed after, so the endpoint works — and
/// costs nothing — on an otherwise unprofiled server.
///
/// The handler *blocks its worker* for the window (clamped to 1..=30 s);
/// a process-wide mutex serializes overlapping windows so a second
/// concurrent call waits rather than disarming under the first.
fn debug_profile(req: &Request) -> (u16, RespBody) {
    static WINDOW: Mutex<()> = Mutex::new(());
    let seconds = req
        .query_param("seconds")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1)
        .clamp(1, 30);
    let _window = WINDOW.lock().unwrap_or_else(|p| p.into_inner());
    let temporary = atpm_net::sys::profiler_hz() == 0;
    if temporary {
        if let Err(e) = atpm_net::sys::profiler_arm(99) {
            return (
                501,
                RespBody::Text("text/plain", format!("profiler unavailable: {e}\n")),
            );
        }
    }
    let pos = atpm_obs::profile::cursor();
    std::thread::sleep(std::time::Duration::from_secs(seconds));
    let folded = atpm_obs::profile::render_folded_since(pos);
    if temporary {
        let _ = atpm_net::sys::profiler_disarm();
    }
    match folded {
        Ok(text) => (200, RespBody::Text("text/plain; charset=utf-8", text)),
        Err(e) => (
            500,
            RespBody::Text("text/plain", format!("symbolization failed: {e}\n")),
        ),
    }
}

/// Transport backend selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Fixed accept pool: one blocking worker per live connection.
    Pool,
    /// Readiness reactor shards over `atpm-net`: connections multiplexed,
    /// workers execute requests.
    Epoll,
}

impl Backend {
    /// Parses a `--backend` flag value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "pool" => Some(Backend::Pool),
            "epoll" => Some(Backend::Epoll),
            _ => None,
        }
    }

    /// The flag spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Pool => "pool",
            Backend::Epoll => "epoll",
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Request-executing threads. Under [`Backend::Pool`] this is also the
    /// cap on concurrently served connections; under [`Backend::Epoll`]
    /// connection count is independent of it.
    pub workers: usize,
    /// Transport backend.
    pub backend: Backend,
    /// Reactor shards (epoll backend only): event-loop threads sharing the
    /// listener via `EPOLLEXCLUSIVE`.
    pub shards: usize,
    /// Evict sessions idle this long, answering later requests with
    /// `410 Gone`. `None` keeps sessions forever.
    pub session_ttl_ms: Option<u64>,
    /// Expiry sweep period (only meaningful with a TTL set).
    pub sweep_every_ms: u64,
    /// Snapshot-store LRU budget in bytes; `None` is unbounded.
    pub snapshot_budget_bytes: Option<usize>,
    /// Close *connections* (not sessions) idle this long — slowloris
    /// hygiene, epoll backend only. Defaults to 60 s. `None` keeps
    /// connections forever, which is what the pool backend does: turn it
    /// off when byte-identical behavior with the pool oracle matters
    /// (an idle connection reaped here stays open there).
    pub idle_timeout_ms: Option<u64>,
    /// Shed dispatches with `503 Retry-After` once this many jobs are
    /// queued ahead of the workers (epoll backend only; the pool backend's
    /// queue is the kernel accept backlog). 0 disables shedding.
    pub max_queue: usize,
    /// Append committed session transitions to this journal and replay it
    /// (checkpoint + segment tail) on start. `None` keeps sessions
    /// memory-only.
    pub journal_path: Option<String>,
    /// When to fsync journal appends (see [`FsyncPolicy`]): `shutdown`
    /// defers durability to the final barrier, `group:MS` batches appends
    /// behind a shared barrier with a bounded-latency window, `always`
    /// fsyncs every record. Replies to mutating session routes are held
    /// until their record's barrier completes.
    pub fsync: FsyncPolicy,
    /// Checkpoint period: serialize every live session, rotate the journal,
    /// and retire sealed segments this often. 0 disables checkpointing
    /// (the journal grows without bound, as before).
    pub checkpoint_every_ms: u64,
    /// On shutdown, give in-flight requests this long to finish writing
    /// before connections are torn down (epoll backend only).
    pub drain_ms: u64,
    /// Enable the process tracer at boot and dump Chrome trace-event JSON
    /// (Perfetto / `chrome://tracing` loadable) to this path on shutdown.
    /// `None` leaves tracing disabled (one relaxed load per would-be span).
    pub trace_path: Option<String>,
    /// Arm the sampling CPU profiler at this rate for the server's whole
    /// lifetime; folded stacks dump to [`ServeConfig::profile_path`] on
    /// shutdown. 0 (the default) leaves the profiler off — zero overhead —
    /// and `GET /debug/profile` arms temporarily per window instead.
    pub profile_hz: u32,
    /// Where shutdown writes the cumulative folded-stack profile when
    /// [`ServeConfig::profile_hz`] > 0. `None` defaults to
    /// `atpm-profile.folded`.
    pub profile_path: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            backend: Backend::Epoll,
            shards: 2,
            session_ttl_ms: None,
            sweep_every_ms: 1_000,
            snapshot_budget_bytes: None,
            idle_timeout_ms: Some(60_000),
            max_queue: 1_024,
            journal_path: None,
            fsync: FsyncPolicy::default(),
            checkpoint_every_ms: 300_000,
            drain_ms: 500,
            trace_path: None,
            profile_hz: 0,
            profile_path: None,
        }
    }
}

/// Live connections, so shutdown can interrupt workers parked in a
/// keep-alive read (a worker blocked on an idle client would otherwise
/// never observe the stop flag and `join` would deadlock).
#[derive(Default)]
struct ConnRegistry {
    map: Mutex<HashMap<u64, TcpStream>>,
    next: AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.map
                .lock()
                .expect("conn registry poisoned")
                .insert(id, clone);
        }
        id
    }

    fn deregister(&self, id: u64) {
        self.map.lock().expect("conn registry poisoned").remove(&id);
    }

    fn close_all(&self) {
        for stream in self.map.lock().expect("conn registry poisoned").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// The running transport behind a [`Server`].
enum ServerBackend {
    Pool {
        conns: Arc<ConnRegistry>,
        workers: Vec<JoinHandle<()>>,
        /// Session-expiry sweeper (the epoll backend sweeps from its
        /// reactor tick instead).
        sweeper: Option<JoinHandle<()>>,
    },
    Epoll(crate::epoll::EpollBackend),
}

/// A running server; dropping it (or calling [`shutdown`](Server::shutdown))
/// stops the workers.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    backend: ServerBackend,
    /// Which backend actually started (epoll falls back to pool on
    /// platforms without the syscall shims).
    effective: Backend,
    /// Kept so shutdown can raise `draining` and fsync the journal after
    /// the last worker exits.
    state: Arc<AppState>,
    /// Where shutdown dumps the Chrome trace, when tracing was enabled.
    trace_path: Option<String>,
    /// Where shutdown dumps the folded CPU profile, when the lifetime
    /// profiler (`profile_hz > 0`) armed successfully.
    profile_path: Option<String>,
    /// The periodic checkpoint thread, when journaling with
    /// `checkpoint_every_ms > 0`.
    checkpointer: Option<JoinHandle<()>>,
    /// The shutdown durability barrier's failure, if any. Surfaced via
    /// [`durability_error`](Server::durability_error) so the binary can
    /// exit nonzero — a supervisor must notice lost durability.
    durability_error: Option<io::Error>,
}

impl Server {
    /// Binds and starts the configured backend. On platforms without epoll
    /// support, [`Backend::Epoll`] transparently falls back to the pool.
    ///
    /// With [`ServeConfig::journal_path`] set, the journal is opened (and
    /// replayed into the session manager) before the first connection is
    /// accepted; a journal that cannot be opened fails the boot rather
    /// than silently serving undurably.
    pub fn start(state: Arc<AppState>, cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        if let Some(budget) = cfg.snapshot_budget_bytes {
            state.store.set_budget(budget);
        }
        state.metrics.max_queue.set(cfg.max_queue as i64);
        if cfg.trace_path.is_some() {
            tracer().set_enabled(true);
        }
        // Lifetime profiler: warn-and-continue when the platform lacks the
        // shims — profiling is diagnostics, not a reason to refuse boot.
        let mut profile_path = None;
        if cfg.profile_hz > 0 {
            match atpm_net::sys::profiler_arm(cfg.profile_hz) {
                Ok(()) => {
                    profile_path = Some(
                        cfg.profile_path
                            .clone()
                            .unwrap_or_else(|| "atpm-profile.folded".to_string()),
                    );
                }
                Err(e) => eprintln!("# profiler unavailable ({e}); continuing without"),
            }
        }
        if let Some(path) = &cfg.journal_path {
            let (journal, records) = Journal::open_with(path, cfg.fsync, Arc::new(RealIo))?;
            journal.bind_fsync_histogram(state.metrics.journal_fsync_seconds.clone());
            // A torn tail (partial append at the moment of a crash) is
            // normal for a kill -9, but it must never be *silent*: count
            // it, log the byte offset, and leave an event-ring record so
            // `/debug/events` shows it after the fact.
            for (file, offset) in &journal.open_info().torn {
                state.metrics.journal_torn_tail.inc();
                state.events.record(
                    "journal",
                    "boot",
                    &format!("torn tail truncated in {file} at byte {offset}"),
                    0,
                    Duration::ZERO,
                );
                eprintln!("# journal: torn tail truncated in {file} at byte {offset}");
            }
            // Checkpoint head watermark: recovered-then-deleted sessions
            // must never recycle a token.
            state
                .manager
                .bump_next_id(journal.open_info().next_id_floor);
            let t_replay = Instant::now();
            let recovered = state.manager.recover(&records);
            state
                .metrics
                .journal_replay_seconds
                .record_duration(t_replay.elapsed());
            state.manager.attach_journal(Arc::new(journal));
            state.metrics.recovered_sessions.add(recovered as u64);
        }
        let checkpointer = (cfg.journal_path.is_some() && cfg.checkpoint_every_ms > 0).then(|| {
            let state = state.clone();
            let stop = stop.clone();
            let period = Duration::from_millis(cfg.checkpoint_every_ms);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    // Sleep in short slices so shutdown isn't gated on the
                    // checkpoint period.
                    let mut slept = Duration::ZERO;
                    while slept < period && !stop.load(Ordering::SeqCst) {
                        let slice = Duration::from_millis(50).min(period - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match state.manager.checkpoint() {
                        Ok(sessions) => state.events.record(
                            "journal",
                            "checkpoint",
                            &format!("checkpointed {sessions} sessions"),
                            0,
                            Duration::ZERO,
                        ),
                        // A failed checkpoint is not a durability loss —
                        // the sealed segments stay and replay next boot —
                        // but it must be visible.
                        Err(e) => {
                            state.events.record(
                                "journal",
                                "checkpoint",
                                &format!("checkpoint failed: {e}"),
                                0,
                                Duration::ZERO,
                            );
                            eprintln!("# journal checkpoint failed: {e}");
                        }
                    }
                }
            })
        });
        if cfg.backend == Backend::Epoll {
            match crate::epoll::EpollBackend::start(state.clone(), cfg, &listener, stop.clone()) {
                Ok(backend) => {
                    return Ok(Server {
                        addr,
                        stop,
                        backend: ServerBackend::Epoll(backend),
                        effective: Backend::Epoll,
                        state,
                        trace_path: cfg.trace_path.clone(),
                        profile_path,
                        checkpointer,
                        durability_error: None,
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::Unsupported => {
                    eprintln!("# epoll backend unsupported on this platform; using pool");
                    // The listener was switched nonblocking by the failed
                    // reactor attempt only if construction got that far;
                    // restore blocking mode for the pool workers.
                    listener.set_nonblocking(false)?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Self::start_pool(
            state,
            cfg,
            listener,
            addr,
            stop,
            profile_path,
            checkpointer,
        ))
    }

    fn start_pool(
        state: Arc<AppState>,
        cfg: &ServeConfig,
        listener: TcpListener,
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        profile_path: Option<String>,
        checkpointer: Option<JoinHandle<()>>,
    ) -> Server {
        let conns = Arc::new(ConnRegistry::default());
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let listener = listener.try_clone().expect("clone listener");
                let state = state.clone();
                let stop = stop.clone();
                let conns = conns.clone();
                std::thread::spawn(move || worker_loop(&listener, &state, &stop, &conns))
            })
            .collect();
        let sweeper = cfg.session_ttl_ms.map(|ttl| {
            let state = state.clone();
            let stop = stop.clone();
            let period = std::time::Duration::from_millis(cfg.sweep_every_ms.max(1));
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    // Sleep in short slices so shutdown isn't gated on the
                    // sweep period.
                    let mut slept = std::time::Duration::ZERO;
                    while slept < period && !stop.load(Ordering::SeqCst) {
                        let slice = std::time::Duration::from_millis(50).min(period - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    state.manager.sweep_expired(ttl);
                }
            })
        });
        Server {
            addr,
            stop,
            backend: ServerBackend::Pool {
                conns,
                workers,
                sweeper,
            },
            effective: Backend::Pool,
            state,
            trace_path: cfg.trace_path.clone(),
            profile_path,
            checkpointer,
            durability_error: None,
        }
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backend actually serving (after any platform fallback).
    pub fn backend(&self) -> Backend {
        self.effective
    }

    /// The shutdown durability barrier's failure, if the final journal
    /// fsync failed (meaningful only after [`shutdown`](Server::shutdown)).
    /// A poisoned journal reports its original failure here too — `sync`
    /// on a poisoned journal fails fast.
    pub fn durability_error(&self) -> Option<&io::Error> {
        self.durability_error.as_ref()
    }

    /// Stops accepting, drains in-flight work (epoll backend, up to
    /// [`ServeConfig::drain_ms`]), joins every thread, and fsyncs the
    /// journal. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.state.metrics.draining.set(1);
        match &mut self.backend {
            ServerBackend::Pool {
                conns,
                workers,
                sweeper,
            } => {
                // Workers mid-connection: yank the socket from under the read.
                conns.close_all();
                // Workers parked in accept(): poke them awake.
                for _ in 0..workers.len() {
                    let _ = TcpStream::connect(self.addr);
                }
                for handle in workers.drain(..) {
                    let _ = handle.join();
                }
                if let Some(handle) = sweeper.take() {
                    let _ = handle.join();
                }
            }
            ServerBackend::Epoll(backend) => backend.shutdown(),
        }
        if let Some(handle) = self.checkpointer.take() {
            let _ = handle.join();
        }
        // Every worker has exited: nothing appends anymore, so this is the
        // durability barrier for everything the journal holds. A failure
        // here means the tail of the run may not be on disk — record it so
        // the binary can exit nonzero and a supervisor notices.
        if let Err(e) = self.state.manager.sync_journal() {
            eprintln!("# journal fsync at shutdown failed: {e}; recent transitions may be lost");
            self.durability_error = Some(e);
        }
        if let Some(path) = self.trace_path.take() {
            match std::fs::write(&path, tracer().drain_json()) {
                Ok(()) => eprintln!("# trace written to {path}"),
                Err(e) => eprintln!("# trace write to {path} failed: {e}"),
            }
        }
        if let Some(path) = self.profile_path.take() {
            let _ = atpm_net::sys::profiler_disarm();
            // Cumulative dump: everything sampled since boot.
            match atpm_obs::profile::render_folded_since(0)
                .and_then(|folded| std::fs::write(&path, folded))
            {
                Ok(()) => eprintln!("# profile written to {path}"),
                Err(e) => eprintln!("# profile write to {path} failed: {e}"),
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(listener: &TcpListener, state: &AppState, stop: &AtomicBool, conns: &ConnRegistry) {
    // One scratch per worker, reused across every request it ever serves.
    let mut scratch = CoverageScratch::new();
    while !stop.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let id = conns.register(&stream);
        // Re-check after registering: a shutdown between accept and register
        // would have missed this connection in close_all.
        if stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            conns.deregister(id);
            return;
        }
        // Mirror the reactor's connection counters at the equivalent
        // points (accept here, close below) so the two backends' /metrics
        // bodies agree at rest.
        state.metrics.net.accepts.inc();
        let _ = serve_connection(stream, state, stop, &mut scratch);
        state.metrics.net.conns_closed.inc();
        conns.deregister(id);
    }
}

fn serve_connection(
    stream: TcpStream,
    state: &AppState,
    stop: &AtomicBool,
    scratch: &mut CoverageScratch,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_request(&mut reader)? {
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed(status, message) => {
                let body = Json::obj([("error", Json::Str(message))]).encode();
                write_response(&mut writer, status, body.as_bytes(), false)?;
                return Ok(());
            }
            ReadOutcome::Ok(req) => {
                // `dispatches` counts before respond (the reactor counts at
                // job dispatch); request latency and the event record land
                // strictly after, so a /metrics or /debug/events response
                // never observes itself.
                state.metrics.net.dispatches.inc();
                let rid = request_id(state, &req);
                let t0 = Instant::now();
                let (status, body) = respond(state, &req, scratch);
                state.metrics.record_request(&req.method, &req.path, t0);
                state.events.record(
                    "http",
                    &rid,
                    &format!("{} {}", req.method, req.path),
                    status,
                    t0.elapsed(),
                );
                let keep = !req.wants_close();
                // 503s (shed, degraded journal) always carry Retry-After;
                // header order matches the epoll worker byte-for-byte.
                let mut extra = vec![("x-request-id", rid.as_str())];
                if status == 503 {
                    extra.push(("retry-after", "1"));
                }
                match &body {
                    RespBody::Json(json) => write_response_with(
                        &mut writer,
                        status,
                        json.encode().as_bytes(),
                        keep,
                        &extra,
                    )?,
                    RespBody::Text(ct, text) => {
                        write_response_ct(&mut writer, status, ct, text.as_bytes(), keep, &extra)?
                    }
                }
                if !keep {
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{PolicySpec, SnapshotSource};

    fn state_with_snapshot() -> Arc<AppState> {
        let state = AppState::new();
        state.store.insert(
            Snapshot::build(&SnapshotReq {
                name: "g".into(),
                source: SnapshotSource::Preset {
                    dataset: "nethept".into(),
                    scale: 0.02,
                },
                k: 4,
                rr_theta: 4_000,
                seed: 1,
                threads: 1,
            })
            .unwrap(),
        );
        state
    }

    fn call(state: &AppState, method: &str, path: &str, body: Json) -> (u16, Json) {
        let mut scratch = CoverageScratch::new();
        match route(state, method, path, &body, &mut scratch) {
            Ok(ok) => ok,
            Err(e) => (e.status, Json::obj([("error", Json::Str(e.message))])),
        }
    }

    #[test]
    fn routes_cover_the_protocol_surface() {
        let state = state_with_snapshot();
        let (status, health) = call(&state, "GET", "/healthz", Json::obj([]));
        assert_eq!(
            (status, health.get("ok").and_then(Json::as_bool)),
            (200, Some(true))
        );

        let (status, list) = call(&state, "GET", "/snapshots", Json::obj([]));
        assert_eq!(status, 200);
        assert_eq!(list.as_arr().unwrap().len(), 1);

        let (status, info) = call(&state, "GET", "/snapshots/g", Json::obj([]));
        assert_eq!(status, 200);
        assert_eq!(info.get("targets").unwrap().as_u64(), Some(4));

        let (status, est) = call(
            &state,
            "POST",
            "/snapshots/g/estimate",
            Json::obj([("nodes", Json::nums([0u32, 1]))]),
        );
        assert_eq!(status, 200);
        assert!(est.get("spread").unwrap().as_f64().unwrap() >= 0.0);

        let create = CreateSessionReq {
            snapshot: "g".into(),
            policy: PolicySpec::DeployAll,
            world_seed: 3,
        };
        let (status, resp) = call(&state, "POST", "/sessions", create.to_json());
        assert_eq!(status, 201);
        let token = resp.get("session").unwrap().as_str().unwrap().to_string();

        let (status, batch) = call(
            &state,
            "POST",
            &format!("/sessions/{token}/next"),
            Json::obj([]),
        );
        assert_eq!(status, 200);
        let seed = batch.get("seeds").unwrap().as_arr().unwrap()[0]
            .as_u64()
            .unwrap() as u32;

        let (status, obs) = call(
            &state,
            "POST",
            &format!("/sessions/{token}/observe"),
            ObserveReq::Simulate { seed }.to_json(),
        );
        assert_eq!(status, 200);
        assert!(obs.get("newly_activated").unwrap().as_u64().unwrap() >= 1);

        let (status, ledger) = call(
            &state,
            "GET",
            &format!("/sessions/{token}/ledger"),
            Json::obj([]),
        );
        assert_eq!(status, 200);
        assert_eq!(ledger.get("selected").unwrap().as_arr().unwrap().len(), 1);

        let (status, _) = call(
            &state,
            "DELETE",
            &format!("/sessions/{token}"),
            Json::obj([]),
        );
        assert_eq!(status, 200);
        let (status, _) = call(&state, "DELETE", "/snapshots/g", Json::obj([]));
        assert_eq!(status, 200);
    }

    #[test]
    fn unknown_routes_are_404_and_errors_carry_messages() {
        let state = state_with_snapshot();
        let (status, body) = call(&state, "GET", "/nope", Json::obj([]));
        assert_eq!(status, 404);
        assert!(body
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("/nope"));
        let (status, _) = call(&state, "PATCH", "/healthz", Json::obj([]));
        assert_eq!(status, 404);
        let (status, body) = call(&state, "POST", "/sessions", Json::obj([]));
        assert_eq!(status, 400);
        assert!(body.get("error").is_some());
    }

    #[test]
    fn server_boots_and_shuts_down_on_both_backends() {
        for backend in [Backend::Epoll, Backend::Pool] {
            let state = state_with_snapshot();
            let cfg = ServeConfig {
                backend,
                ..ServeConfig::default()
            };
            let mut server = Server::start(state, &cfg).unwrap();
            let addr = server.addr();
            assert_ne!(addr.port(), 0);
            if backend == Backend::Pool {
                assert_eq!(server.backend(), Backend::Pool);
            }
            server.shutdown();
            server.shutdown(); // idempotent
        }
    }

    #[test]
    fn epoll_backend_multiplexes_more_connections_than_workers() {
        use crate::client::{HttpClient, ProtocolClient};
        // One worker, one shard — and 16 concurrently open keep-alive
        // clients must all be served. Structurally impossible on the pool
        // backend, where connection 2 would wait for connection 1 to close.
        let state = state_with_snapshot();
        let cfg = ServeConfig {
            workers: 1,
            shards: 1,
            ..ServeConfig::default()
        };
        let mut server = Server::start(state, &cfg).unwrap();
        assert_eq!(server.backend(), Backend::Epoll);
        let mut clients: Vec<HttpClient> = (0..16)
            .map(|_| HttpClient::connect(server.addr()).unwrap())
            .collect();
        // Interleave requests across all open connections, twice over.
        for _round in 0..2 {
            for client in clients.iter_mut() {
                let resp = client.call("GET", "/healthz", &Json::obj([])).unwrap();
                assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
            }
        }
        server.shutdown();
    }
}
