//! The epoll backend: reactor shards multiplexing thousands of keep-alive
//! connections over a small request-executing worker pool.
//!
//! Topology: `shards` reactor threads each own an epoll instance and a
//! clone of the shared listener (registered `EPOLLEXCLUSIVE`, so the
//! kernel wakes one shard per connect). A reactor never executes a
//! request — its [`HttpDriver`] frame-cuts the receive buffer with
//! [`frame_request`](crate::http::frame_request) and posts the complete
//! frame to the worker pool over an mpsc channel. Workers — the same
//! one-[`CoverageScratch`]-per-thread discipline as the pool backend —
//! parse, dispatch through [`route`](crate::server::route) via
//! [`respond`](crate::server::respond), encode the response, and push it
//! into the owning shard's [`ReplyQueue`]; the queue's eventfd waker pulls
//! the reactor out of `epoll_wait` to write it, resuming across partial
//! writes.
//!
//! The request pipeline is therefore identical to the pool backend's
//! (`read → parse → respond → write`, one in-flight request per
//! connection, pipelined requests served in order) — only the threading
//! changed, which is why `tests/e2e_equivalence.rs` passes unmodified
//! against either backend. Worker count bounds CPU concurrency; connection
//! count is bounded only by fds; the reactor→worker queue is bounded by
//! overload shedding (dispatches past `max_queue` waiting jobs answer
//! `503 Retry-After` straight from the reactor thread, counted in
//! `/healthz`).
//!
//! Shard 0's reactor tick doubles as the session-expiry sweeper when a TTL
//! is configured.

use std::io;
use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use atpm_net::{ConnId, Driver, Reactor, ReactorConfig, Reply, ReplyQueue, Sliced};
use atpm_ris::CoverageScratch;

use crate::http::{self, FrameStatus};
use crate::json::Json;
use crate::server::{request_id, respond, valid_request_id, AppState, RespBody, ServeConfig};

/// A complete request frame on its way to a worker, with the return
/// address (shard queue + connection) attached.
struct Job {
    conn: ConnId,
    frame: Vec<u8>,
    replies: Arc<ReplyQueue>,
    /// Dispatch time, for the queue-wait histogram (reactor → worker).
    enqueued: Instant,
}

/// JSON error body in wire form, matching the router's error shape.
fn error_bytes(status: u16, message: &str) -> Vec<u8> {
    let body = Json::obj([("error", Json::Str(message.to_string()))]).encode();
    http::encode_response(status, body.as_bytes(), false)
}

/// Cheap header scan for a client-supplied `X-Request-Id` in a raw frame.
///
/// The shed path answers 503 from the reactor thread *without* parsing the
/// request, but an overloaded rejection should still echo the caller's id
/// so it can be correlated client-side. Only a valid id (per
/// [`valid_request_id`]) is returned; the generated-id counter is never
/// consumed here, keeping generated sequences identical across backends.
fn shed_request_id(frame: &[u8]) -> Option<&str> {
    let head_end = frame.windows(4).position(|w| w == b"\r\n\r\n")?;
    for line in frame[..head_end].split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            continue; // request line, or a fragment with no header syntax
        };
        if line[..colon].eq_ignore_ascii_case(b"x-request-id") {
            let value = std::str::from_utf8(&line[colon + 1..]).ok()?.trim();
            return valid_request_id(value).then_some(value);
        }
    }
    None
}

/// The HTTP protocol plugged into a reactor shard.
struct HttpDriver {
    jobs: mpsc::Sender<Job>,
    state: Arc<AppState>,
    /// `Some((ttl_ms, period_ms))` on the shard that owns the expiry sweep.
    sweep: Option<(u64, u64)>,
}

impl Driver for HttpDriver {
    fn slice(&mut self, buf: &[u8]) -> Sliced {
        match http::frame_request(buf) {
            FrameStatus::Partial { head_complete } => Sliced::Partial { head_complete },
            FrameStatus::Complete { len } => Sliced::Frame(len),
            FrameStatus::Malformed { status, message } => {
                Sliced::Fatal(error_bytes(status, &message))
            }
        }
    }

    fn dispatch(&mut self, conn: ConnId, frame: Vec<u8>, replies: &Arc<ReplyQueue>) {
        // Overload control: the queue between the reactors and the workers
        // is the only unbounded buffer in the pipeline. Past `max_queue`
        // waiting jobs, shed the request right here — a cheap 503 with
        // Retry-After now beats an indefinitely queued answer later.
        let m = &self.state.metrics;
        let max = m.max_queue.get();
        if max > 0 && m.queue_depth.get() >= max {
            m.shed_503.inc();
            let body =
                Json::obj([("error", Json::Str("server overloaded; retry later".into()))]).encode();
            let mut extra = vec![("retry-after", "1")];
            if let Some(id) = shed_request_id(&frame) {
                extra.push(("x-request-id", id));
            }
            replies.push(Reply {
                conn,
                bytes: http::encode_response_with(503, body.as_bytes(), false, &extra),
                keep_alive: false,
                id: None,
            });
            return;
        }
        m.queue_depth.inc();
        // A send failure means the worker pool is gone (shutdown); the
        // connection dies with the reactor moments later.
        if self
            .jobs
            .send(Job {
                conn,
                frame,
                replies: replies.clone(),
                enqueued: Instant::now(),
            })
            .is_err()
        {
            m.queue_depth.dec();
        }
    }

    fn eof_reply(&mut self, head_complete: bool) -> Option<Vec<u8>> {
        // Mid-header EOF answers 400 like the blocking reader; mid-body EOF
        // closes silently (the blocking path's read_exact fails the same
        // way).
        (!head_complete).then(|| error_bytes(400, "connection closed mid-header"))
    }

    fn tick_every_ms(&self) -> Option<u64> {
        self.sweep.map(|(_, period)| period)
    }

    fn on_tick(&mut self, _now_ms: u64) {
        if let Some((ttl, _)) = self.sweep {
            self.state.manager.sweep_expired(ttl);
        }
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>, state: &AppState) {
    // One scratch per worker for its whole life — the same zero-allocation
    // steady state the pool backend keeps.
    let mut scratch = CoverageScratch::new();
    loop {
        // Holding the lock across `recv` is the standard shared-receiver
        // idiom: idle workers queue on the mutex instead of the channel.
        // No stop check here: on shutdown the queue must *drain* (every
        // accepted job gets its reply flushed by the draining reactor);
        // workers exit when the last shard driver drops the sender.
        let job = match rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return, // all senders (shard drivers) gone
        };
        let m = &state.metrics;
        m.queue_depth.dec();
        let waited = job.enqueued.elapsed();
        let reply = match http::parse_frame(&job.frame) {
            Ok(req) => {
                // Latency (and the queue wait measured above) record
                // strictly after respond — same discipline as the pool
                // backend, so a /metrics scrape never counts itself, a
                // /debug/events tail never lists its own request, and an
                // at-rest exposition is byte-identical across backends.
                let rid = request_id(state, &req);
                let t0 = Instant::now();
                let (status, body) = respond(state, &req, &mut scratch);
                m.queue_wait_seconds.record_duration(waited);
                m.record_request(&req.method, &req.path, t0);
                state.events.record(
                    "http",
                    &rid,
                    &format!("{} {}", req.method, req.path),
                    status,
                    t0.elapsed(),
                );
                let keep = !req.wants_close();
                // 503s (degraded journal) always carry Retry-After; header
                // order matches the pool backend byte-for-byte.
                let mut extra = vec![("x-request-id", rid.as_str())];
                if status == 503 {
                    extra.push(("retry-after", "1"));
                }
                let bytes = match &body {
                    RespBody::Json(json) => {
                        http::encode_response_with(status, json.encode().as_bytes(), keep, &extra)
                    }
                    RespBody::Text(ct, text) => {
                        http::encode_response_ct(status, ct, text.as_bytes(), keep, &extra)
                    }
                };
                Reply {
                    conn: job.conn,
                    bytes,
                    keep_alive: keep,
                    // Reply ids feed the reactor's per-request span args;
                    // skip the clone entirely when tracing is off.
                    id: atpm_obs::tracer().enabled().then(|| rid.clone()),
                }
            }
            Err((status, message)) => Reply {
                conn: job.conn,
                bytes: error_bytes(status, &message),
                keep_alive: false,
                id: None,
            },
        };
        job.replies.push(reply);
    }
}

/// A running epoll backend: shard reactors + worker pool.
pub(crate) struct EpollBackend {
    shards: Vec<JoinHandle<()>>,
    queues: Vec<Arc<ReplyQueue>>,
    workers: Vec<JoinHandle<()>>,
}

impl EpollBackend {
    /// Spawns `cfg.shards` reactors over clones of `listener` and
    /// `cfg.workers` request executors. Fails with `Unsupported` where the
    /// epoll shims don't exist (the caller falls back to the pool backend).
    pub(crate) fn start(
        state: Arc<AppState>,
        cfg: &ServeConfig,
        listener: &TcpListener,
        stop: Arc<AtomicBool>,
    ) -> io::Result<EpollBackend> {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let sweep = cfg
            .session_ttl_ms
            .map(|ttl| (ttl, cfg.sweep_every_ms.max(1)));

        // Reactors first: if epoll is unsupported, fail before spawning
        // anything.
        let mut reactors = Vec::new();
        for _ in 0..cfg.shards.max(1) {
            let reactor = Reactor::new(
                listener.try_clone()?,
                ReactorConfig {
                    // A frame can never legitimately exceed head + body
                    // caps; beyond that reads pause, not break.
                    read_limit: http::MAX_HEAD + http::MAX_BODY + 1024,
                    write_backpressure: 1 << 20,
                    tick_ms: 50,
                    idle_timeout_ms: cfg.idle_timeout_ms,
                    max_conns: 65_536,
                    drain_ms: cfg.drain_ms,
                },
            )?
            .with_metrics(state.metrics.net.clone());
            reactors.push(reactor);
        }

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let state = state.clone();
                std::thread::spawn(move || worker_loop(&rx, &state))
            })
            .collect();

        let mut queues = Vec::new();
        let mut shards = Vec::new();
        for (i, reactor) in reactors.into_iter().enumerate() {
            queues.push(reactor.replies());
            let driver = HttpDriver {
                jobs: tx.clone(),
                state: state.clone(),
                // Exactly one shard runs the expiry sweep.
                sweep: if i == 0 { sweep } else { None },
            };
            let stop = stop.clone();
            shards.push(std::thread::spawn(move || {
                reactor.run(driver, &stop);
            }));
        }
        drop(tx); // workers exit once every shard driver is gone

        Ok(EpollBackend {
            shards,
            queues,
            workers,
        })
    }

    /// Interrupts the shards (the stop flag is already raised) and joins
    /// everything.
    pub(crate) fn shutdown(&mut self) {
        for queue in &self.queues {
            queue.waker().wake();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
        // All drivers (job senders) died with their reactors; workers see
        // the channel close and exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
