//! Hand-rolled HTTP/1.1 request parsing and response writing — just enough
//! protocol for a loopback JSON API, std-only.
//!
//! Supported: request line + headers, `Content-Length` bodies, keep-alive
//! (the HTTP/1.1 default) and `Connection: close`. Not supported (rejected
//! cleanly): chunked transfer encoding, upgrades, multi-line headers.
//! Header and body sizes are capped so a misbehaving client cannot balloon
//! a worker's memory.
//!
//! Two entry points share one head parser, so the two server backends
//! cannot diverge on protocol semantics:
//!
//! * [`read_request`] — the blocking path (pool backend, `HttpClient`
//!   responses): pulls lines off a `BufRead` until the head completes,
//!   then `read_exact`s the body.
//! * [`frame_request`] + [`parse_frame`] — the incremental path (epoll
//!   backend): [`frame_request`] scans a connection's receive buffer and
//!   says whether a complete request is present (and how long it is)
//!   without blocking; [`parse_frame`] then parses the complete frame on a
//!   worker thread. Both funnel into the same [`parse_head`], so a given
//!   byte stream yields the same request — or the same error status — on
//!   either backend.

use std::io::{self, BufRead, Write};

/// Longest accepted request head (request line + headers), bytes.
pub const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted body, bytes (observation lists on million-node graphs
/// fit comfortably; anything bigger is a client bug).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path with any `?query` suffix stripped.
    pub path: String,
    /// The raw query string after `?` (no decoding), empty when absent.
    pub query: String,
    /// Lowercased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-delimited; empty if absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Path split into non-empty segments: `/sessions/s1/next` →
    /// `["sessions", "s1", "next"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// First value of `key` in the query string (`?seconds=2&n=50`). No
    /// percent-decoding — the `/debug/*` parameters are plain integers.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Outcome of reading one request off a connection.
pub enum ReadOutcome {
    /// A complete request.
    Ok(Request),
    /// Clean EOF before any bytes — the peer closed an idle keep-alive
    /// connection; not an error.
    Closed,
    /// The peer sent something unusable; the caller should answer with this
    /// status and close.
    Malformed(u16, String),
}

/// Parses a completed head (request line + header lines, terminators
/// stripped) into a body-less [`Request`] plus the declared
/// `Content-Length`. This is the single source of truth for head
/// semantics: both the blocking reader and the incremental framer call it,
/// with identical error statuses.
fn parse_head(lines: &[Vec<u8>]) -> Result<(Request, Option<usize>), (u16, String)> {
    let request_line = String::from_utf8_lossy(&lines[0]).into_owned();
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err((400, "bad request line".into()));
    };
    // Exact-match the two versions this server speaks. A prefix test
    // (`starts_with("HTTP/1.")`) would wave through inventions like
    // `HTTP/1.9999`, which RFC 9112 §2.3 does not define and which
    // intermediaries may interpret differently than we do.
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err((505, "unsupported HTTP version".into()));
    }

    let mut headers = Vec::with_capacity(lines.len() - 1);
    for line in &lines[1..] {
        let text = String::from_utf8_lossy(line);
        let Some((name, value)) = text.split_once(':') else {
            return Err((400, "bad header line".into()));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let req = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query: query.to_string(),
        headers,
        body: Vec::new(),
    };

    // Like Content-Length below, Transfer-Encoding must be checked across
    // *every* repeat of the header (and every comma-separated element):
    // first-match resolution would let `Transfer-Encoding: identity`
    // followed by `Transfer-Encoding: chunked` slip past this guard while
    // a fronting proxy honors the chunked coding — the same smuggling
    // class as mismatched duplicate lengths.
    for (name, value) in &req.headers {
        if name == "transfer-encoding"
            && value
                .split(',')
                .any(|coding| !coding.trim().eq_ignore_ascii_case("identity"))
        {
            return Err((501, "chunked transfer encoding not supported".into()));
        }
    }
    let content_length = parse_content_length(&req)?;
    Ok((req, content_length))
}

/// Resolves the request's framing length from its `Content-Length`
/// header(s), defending the two classic smuggling vectors (RFC 7230
/// §3.3.2 / RFC 9112 §6.3):
///
/// * **Duplicate or list-valued lengths.** `Content-Length: 7` followed by
///   `Content-Length: 999` (or `Content-Length: 7, 999`) must not be
///   resolved first-match-wins — a proxy that picks the *other* value
///   would hand the tail of the body to the next request in the
///   connection. Repeats are tolerated only when every value is
///   byte-identical after trimming; any mismatch is a 400.
/// * **Lenient integer syntax.** The grammar is `1*DIGIT`; Rust's
///   `parse::<usize>` also accepts a leading `+`, which an intermediary
///   parsing strictly would frame differently (`+7` → error vs 7). Only
///   ASCII digits are accepted here.
///
/// Both server backends funnel through this one function, so the rejects
/// are byte-identical on the wire.
fn parse_content_length(req: &Request) -> Result<Option<usize>, (u16, String)> {
    let mut resolved: Option<(&str, usize)> = None;
    for (name, value) in &req.headers {
        if name != "content-length" {
            continue;
        }
        // A list-valued header (`7, 7`) is equivalent to repeating the
        // header line, so both forms share the per-value loop.
        for raw in value.split(',') {
            let text = raw.trim();
            if text.is_empty() || !text.bytes().all(|b| b.is_ascii_digit()) {
                return Err((400, "bad content-length".into()));
            }
            let Ok(len) = text.parse::<usize>() else {
                return Err((400, "bad content-length".into()));
            };
            match resolved {
                None => resolved = Some((text, len)),
                Some((first, _)) if first == text => {}
                Some(_) => {
                    return Err((400, "conflicting content-length values".into()));
                }
            }
        }
    }
    match resolved {
        Some((_, len)) if len > MAX_BODY => Err((413, "body too large".into())),
        Some((_, len)) => Ok(Some(len)),
        None => Ok(None),
    }
}

/// Reads one HTTP/1.1 request from `stream`.
pub fn read_request<R: BufRead>(stream: &mut R) -> io::Result<ReadOutcome> {
    // Request line + headers, byte-capped (including any single oversized
    // line — the budget is bytes consumed so far, not line count).
    let mut head: Vec<Vec<u8>> = Vec::new();
    let mut head_bytes = 0usize;
    loop {
        if head_bytes >= MAX_HEAD {
            // Also guards the leading-blank-line tolerance below from being
            // fed forever.
            return Ok(ReadOutcome::Malformed(431, "request head too large".into()));
        }
        let mut line = Vec::new();
        let n = match read_line_crlf(stream, &mut line, MAX_HEAD - head_bytes) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Ok(ReadOutcome::Malformed(431, "request head too large".into()));
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(if head.is_empty() && head_bytes == 0 {
                ReadOutcome::Closed
            } else {
                ReadOutcome::Malformed(400, "connection closed mid-header".into())
            });
        }
        head_bytes += n;
        if line.is_empty() {
            if head.is_empty() {
                // Tolerate leading blank lines per RFC 9112 §2.2.
                continue;
            }
            break;
        }
        head.push(line);
        if head_bytes > MAX_HEAD {
            return Ok(ReadOutcome::Malformed(431, "request head too large".into()));
        }
    }

    let (mut req, content_length) = match parse_head(&head) {
        Ok(parsed) => parsed,
        Err((status, message)) => return Ok(ReadOutcome::Malformed(status, message)),
    };
    if let Some(len) = content_length {
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        req.body = body;
    }
    Ok(ReadOutcome::Ok(req))
}

/// Incremental framing verdict over a connection's receive buffer.
#[derive(Debug)]
pub enum FrameStatus {
    /// Not enough bytes for a full request yet. `head_complete` reports
    /// whether the header block has fully arrived (so an EOF here can be
    /// classified: mid-header gets a 400, mid-body a silent close — the
    /// same split the blocking reader produces).
    Partial {
        /// Headers done, body still streaming in.
        head_complete: bool,
    },
    /// The first `len` bytes of the buffer are one complete request.
    Complete {
        /// Frame length in bytes (head + body).
        len: usize,
    },
    /// The bytes can never become a valid request: answer with this status
    /// and close.
    Malformed {
        /// HTTP status to answer with.
        status: u16,
        /// Human-readable cause.
        message: String,
    },
}

/// Scanned head lines: shared by [`frame_request`] and [`parse_frame`].
enum HeadScan {
    /// Head incomplete after `buf.len()` bytes.
    Partial,
    /// Head complete: `lines` hold the stripped head, `head_len` is its
    /// wire length including the blank-line terminator.
    Done {
        lines: Vec<Vec<u8>>,
        head_len: usize,
    },
    /// No complete head within [`MAX_HEAD`] bytes.
    TooLarge,
}

/// Walks `buf` line by line (CRLF or bare LF, matching the blocking
/// reader) until the blank line that ends the head. When `collect` is
/// `Some`, stripped line contents are appended to it — the framer's hot
/// path passes `None`, so the per-read-event scan over a still-incomplete
/// head allocates nothing (this runs on the reactor thread for every
/// readiness event of a dripping client).
fn walk_head(buf: &[u8], mut collect: Option<&mut Vec<Vec<u8>>>) -> HeadScan {
    let mut pos = 0usize;
    let mut seen_line = false;
    loop {
        let Some(rel) = buf[pos..].iter().position(|&b| b == b'\n') else {
            // No newline in the remainder: either still streaming or the
            // line already blew the budget.
            return if buf.len() >= MAX_HEAD {
                HeadScan::TooLarge
            } else {
                HeadScan::Partial
            };
        };
        let mut line = &buf[pos..pos + rel];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        pos += rel + 1;
        if line.is_empty() {
            if !seen_line {
                // Leading blank lines tolerated (RFC 9112 §2.2) — but they
                // spend head budget, like the blocking reader.
                if pos >= MAX_HEAD {
                    return HeadScan::TooLarge;
                }
                continue;
            }
            return HeadScan::Done {
                lines: Vec::new(),
                head_len: pos,
            };
        }
        seen_line = true;
        if let Some(lines) = collect.as_deref_mut() {
            lines.push(line.to_vec());
        }
        if pos >= MAX_HEAD {
            return HeadScan::TooLarge;
        }
    }
}

/// [`walk_head`] with the lines materialized (for the parse step).
fn scan_head(buf: &[u8]) -> HeadScan {
    let mut lines: Vec<Vec<u8>> = Vec::new();
    match walk_head(buf, Some(&mut lines)) {
        HeadScan::Done { head_len, .. } => HeadScan::Done { lines, head_len },
        other => other,
    }
}

/// Decides, without blocking or consuming, whether `buf` starts with a
/// complete HTTP/1.1 request. Used by the epoll backend's reactor to cut
/// frames off a connection's receive buffer; the statuses match
/// [`read_request`] byte by byte.
///
/// Cost discipline (this runs on the reactor thread, once per readiness
/// event): while the head is incomplete the call is a single
/// allocation-free scan of the buffered bytes; lines are materialized and
/// parsed only once the head terminator has arrived.
pub fn frame_request(buf: &[u8]) -> FrameStatus {
    // Allocation-free pre-pass: find the head end (or bail Partial).
    let head_len = match walk_head(buf, None) {
        HeadScan::Partial => {
            return FrameStatus::Partial {
                head_complete: false,
            }
        }
        HeadScan::TooLarge => {
            return FrameStatus::Malformed {
                status: 431,
                message: "request head too large".into(),
            }
        }
        HeadScan::Done { head_len, .. } => head_len,
    };
    let (lines, head_len) = match scan_head(&buf[..head_len]) {
        HeadScan::Done { lines, head_len } => (lines, head_len),
        // walk_head already proved the head complete and within budget.
        _ => unreachable!("head completeness decided by the pre-pass"),
    };
    match parse_head(&lines) {
        Err((status, message)) => FrameStatus::Malformed { status, message },
        Ok((_, content_length)) => {
            let body = content_length.unwrap_or(0);
            if buf.len() >= head_len + body {
                FrameStatus::Complete {
                    len: head_len + body,
                }
            } else {
                FrameStatus::Partial {
                    head_complete: true,
                }
            }
        }
    }
}

/// Parses a complete frame (as delimited by [`frame_request`]) into a
/// [`Request`]. Runs on a worker thread, off the reactor. Errors are
/// `(status, message)` pairs for the error response — they can only occur
/// if the caller hands over a frame `frame_request` didn't bless.
pub fn parse_frame(frame: &[u8]) -> Result<Request, (u16, String)> {
    let (lines, head_len) = match scan_head(frame) {
        HeadScan::Done { lines, head_len } => (lines, head_len),
        HeadScan::TooLarge => return Err((431, "request head too large".into())),
        HeadScan::Partial => return Err((400, "incomplete request frame".into())),
    };
    let (mut req, content_length) = parse_head(&lines)?;
    let body = content_length.unwrap_or(0);
    if frame.len() < head_len + body {
        return Err((400, "incomplete request body".into()));
    }
    req.body = frame[head_len..head_len + body].to_vec();
    Ok(req)
}

/// Reads one CRLF- (or bare-LF-) terminated line into `out` (terminator
/// stripped). Returns bytes consumed; 0 means EOF. Errors if the line
/// exceeds `limit`.
fn read_line_crlf<R: BufRead>(
    stream: &mut R,
    out: &mut Vec<u8>,
    limit: usize,
) -> io::Result<usize> {
    let mut consumed = 0usize;
    loop {
        let buf = stream.fill_buf()?;
        if buf.is_empty() {
            return Ok(consumed);
        }
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            out.extend_from_slice(&buf[..nl]);
            stream.consume(nl + 1);
            consumed += nl + 1;
            if out.last() == Some(&b'\r') {
                out.pop();
            }
            return Ok(consumed);
        }
        let n = buf.len();
        out.extend_from_slice(buf);
        stream.consume(n);
        consumed += n;
        if consumed > limit {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
    }
}

/// Writes a JSON response. `keep_alive` controls the `Connection` header;
/// the caller decides whether to actually keep reading.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(stream, status, body, keep_alive, &[])
}

/// [`write_response`] plus caller-supplied extra headers (name must be
/// lowercase; emitted between the fixed headers and the blank line). Used
/// for `Retry-After` on overload sheds.
pub fn write_response_with<W: Write>(
    stream: &mut W,
    status: u16,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write_response_ct(stream, status, "application/json", body, keep_alive, extra)
}

/// The fully general response writer: JSON callers go through
/// [`write_response_with`] (which pins the historical `application/json`
/// header bytes); `GET /metrics` supplies the Prometheus exposition
/// content type.
pub fn write_response_ct<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// [`write_response`] into a fresh byte vector — the form worker threads
/// hand back to the reactor as a [`Reply`](atpm_net::Reply).
pub fn encode_response(status: u16, body: &[u8], keep_alive: bool) -> Vec<u8> {
    encode_response_with(status, body, keep_alive, &[])
}

/// [`encode_response`] with extra headers (see [`write_response_with`]).
pub fn encode_response_with(
    status: u16,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 96);
    write_response_with(&mut out, status, body, keep_alive, extra)
        .expect("writing to a Vec cannot fail");
    out
}

/// [`encode_response`] with an explicit content type (see
/// [`write_response_ct`]).
pub fn encode_response_ct(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 96);
    write_response_ct(&mut out, status, content_type, body, keep_alive, extra)
        .expect("writing to a Vec cannot fail");
    out
}

/// Minimal reason-phrase table for the statuses the API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Status",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_post_with_body() {
        let out = parse(
            "POST /sessions/s1/next?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        );
        let ReadOutcome::Ok(req) = out else {
            panic!("expected Ok")
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions/s1/next");
        assert_eq!(req.segments(), vec!["sessions", "s1", "next"]);
        assert_eq!(req.body, b"{\"a\":1}");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_close_header() {
        let ReadOutcome::Ok(req) = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!("expected Ok")
        };
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_closed_not_error() {
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn malformed_inputs_get_statuses() {
        let cases: Vec<(&str, u16)> = vec![
            ("GARBAGE\r\n\r\n", 400),
            ("GET /x SPDY/3\r\n\r\n", 505),
            ("GET /x HTTP/1.1\r\nbadheader\r\n\r\n", 400),
            ("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
        ];
        for (raw, want) in cases {
            match parse(raw) {
                ReadOutcome::Malformed(status, _) => assert_eq!(status, want, "{raw:?}"),
                _ => panic!("{raw:?} should be malformed"),
            }
        }
    }

    #[test]
    fn version_check_is_exact_not_prefix() {
        // Only the two versions the server actually speaks pass.
        for ok in ["HTTP/1.1", "HTTP/1.0"] {
            assert!(
                matches!(parse(&format!("GET /x {ok}\r\n\r\n")), ReadOutcome::Ok(_)),
                "{ok} must be accepted"
            );
        }
        // Prefix-matching lookalikes (RFC 9112 defines no HTTP/1.2+) and
        // other majors are 505, on both entry points.
        for bad in ["HTTP/1.9999", "HTTP/1.2", "HTTP/1.", "HTTP/2.0", "HTTP/11"] {
            let raw = format!("GET /x {bad}\r\n\r\n");
            match parse(&raw) {
                ReadOutcome::Malformed(status, _) => assert_eq!(status, 505, "{bad}"),
                _ => panic!("{bad} should be rejected"),
            }
            assert!(
                matches!(
                    frame_request(raw.as_bytes()),
                    FrameStatus::Malformed { status: 505, .. }
                ),
                "framer must agree on {bad}"
            );
        }
    }

    #[test]
    fn content_length_must_be_digits_only() {
        // Rust's usize parser takes a leading '+'; RFC 7230 1*DIGIT does
        // not, and a strict intermediary would frame `+7` differently.
        for bad in ["+7", "-7", " 7 8", "7a", "0x7", ""] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nbodybytes");
            match parse(&raw) {
                ReadOutcome::Malformed(status, _) => assert_eq!(status, 400, "{bad:?}"),
                _ => panic!("{bad:?} should be malformed"),
            }
            assert!(
                matches!(
                    frame_request(raw.as_bytes()),
                    FrameStatus::Malformed { status: 400, .. }
                ),
                "framer must agree on {bad:?}"
            );
        }
        // Leading zeros are ugly but grammatical.
        let ReadOutcome::Ok(req) =
            parse("POST /x HTTP/1.1\r\nContent-Length: 007\r\n\r\n{\"a\":1}")
        else {
            panic!("leading zeros are valid 1*DIGIT");
        };
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn transfer_encoding_is_checked_across_all_repeats() {
        // First-match resolution would see only `identity` and wave the
        // chunked coding through — the TE flavor of the duplicate-header
        // smuggle.
        let cases = [
            "POST /x HTTP/1.1\r\nTransfer-Encoding: identity\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: identity, chunked\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nTransfer-Encoding: identity\r\n\r\n",
        ];
        for raw in cases {
            match parse(raw) {
                ReadOutcome::Malformed(status, _) => assert_eq!(status, 501, "{raw:?}"),
                _ => panic!("{raw:?} must be rejected"),
            }
            assert!(
                matches!(
                    frame_request(raw.as_bytes()),
                    FrameStatus::Malformed { status: 501, .. }
                ),
                "framer must agree on {raw:?}"
            );
        }
        // Pure identity (repeated or listed) is still a no-op encoding.
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nTransfer-Encoding: identity\r\nTransfer-Encoding: identity\r\n\r\n"),
            ReadOutcome::Ok(_)
        ));
    }

    #[test]
    fn duplicate_content_lengths_must_agree() {
        // The smuggling shape: first-match resolution would frame the body
        // at 7 and leave the tail to be parsed as a fresh request.
        let smuggle = "POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 999\r\n\r\n0123456";
        match parse(smuggle) {
            ReadOutcome::Malformed(status, msg) => {
                assert_eq!(status, 400);
                assert!(msg.contains("conflicting"), "{msg}");
            }
            _ => panic!("mismatched duplicate content-length must be rejected"),
        }
        assert!(matches!(
            frame_request(smuggle.as_bytes()),
            FrameStatus::Malformed { status: 400, .. }
        ));
        // List form is the same attack in one line.
        let listed = "POST /x HTTP/1.1\r\nContent-Length: 7, 999\r\n\r\n0123456";
        assert!(matches!(parse(listed), ReadOutcome::Malformed(400, _)));
        // Identical repeats are tolerated (RFC 7230 §3.3.2 allows it) and
        // frame exactly once.
        let dup_ok = "POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7\r\n\r\n0123456";
        let ReadOutcome::Ok(req) = parse(dup_ok) else {
            panic!("identical duplicates are acceptable");
        };
        assert_eq!(req.body, b"0123456");
        let FrameStatus::Complete { len } = frame_request(dup_ok.as_bytes()) else {
            panic!("identical duplicates must frame");
        };
        assert_eq!(len, dup_ok.len());
        // "07" vs "7" agree numerically but not byte-wise: still rejected,
        // the conservative reading of "identical field values".
        let sneaky = "POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 07\r\n\r\n0123456";
        assert!(matches!(parse(sneaky), ReadOutcome::Malformed(400, _)));
    }

    #[test]
    fn oversized_single_header_line_gets_431_not_a_dropped_connection() {
        let raw = format!("GET /x HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        match read_request(&mut BufReader::new(raw.as_bytes())).unwrap() {
            ReadOutcome::Malformed(status, _) => assert_eq!(status, 431),
            _ => panic!("expected 431"),
        }
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn framer_matches_blocking_reader_on_every_prefix() {
        // The equivalence property the two backends rest on: for any byte
        // stream, the incremental framer must (a) stay Partial on every
        // strict prefix of a request, (b) cut the same frame the blocking
        // reader consumes, and (c) produce the same parse.
        let cases: Vec<&str> = vec![
            "GET /healthz HTTP/1.1\r\n\r\n",
            "POST /sessions/s1/next?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            "\r\n\r\nGET /tolerated HTTP/1.1\r\n\r\n", // leading blank lines
            "GET /bare-lf HTTP/1.1\nConnection: close\n\n",
        ];
        for raw in cases {
            let bytes = raw.as_bytes();
            for cut in 0..bytes.len() {
                match frame_request(&bytes[..cut]) {
                    FrameStatus::Partial { .. } => {}
                    other => panic!("prefix {cut} of {raw:?} gave {other:?}"),
                }
            }
            let FrameStatus::Complete { len } = frame_request(bytes) else {
                panic!("{raw:?} should frame completely");
            };
            assert_eq!(len, bytes.len(), "{raw:?}");
            let framed = parse_frame(bytes).unwrap();
            let ReadOutcome::Ok(blocking) = parse(raw) else {
                panic!("{raw:?} should parse");
            };
            assert_eq!(framed.method, blocking.method);
            assert_eq!(framed.path, blocking.path);
            assert_eq!(framed.headers, blocking.headers);
            assert_eq!(framed.body, blocking.body);
        }
    }

    #[test]
    fn framer_matches_blocking_reader_on_malformed_input() {
        let cases: Vec<(&str, u16)> = vec![
            ("GARBAGE\r\n\r\n", 400),
            ("GET /x SPDY/3\r\n\r\n", 505),
            ("GET /x HTTP/1.1\r\nbadheader\r\n\r\n", 400),
            ("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
            (
                "POST /x HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
                413,
            ),
        ];
        for (raw, want) in cases {
            let FrameStatus::Malformed { status, .. } = frame_request(raw.as_bytes()) else {
                panic!("{raw:?} should be malformed");
            };
            assert_eq!(status, want, "framer on {raw:?}");
            match parse(raw) {
                ReadOutcome::Malformed(status, _) => assert_eq!(status, want, "reader on {raw:?}"),
                _ => panic!("{raw:?} should be malformed for the blocking reader too"),
            }
        }
    }

    #[test]
    fn framer_handles_pipelining_and_oversized_heads() {
        // Two requests in one buffer: the frame is exactly the first one.
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let FrameStatus::Complete { len } = frame_request(raw) else {
            panic!("first request should frame");
        };
        assert_eq!(len, 19);
        let req = parse_frame(&raw[..len]).unwrap();
        assert_eq!(req.path, "/a");
        // An unterminated header flood trips the cap without a newline.
        let flood = vec![b'a'; MAX_HEAD + 1];
        assert!(matches!(
            frame_request(&flood),
            FrameStatus::Malformed { status: 431, .. }
        ));
        // A terminated but oversized head trips it too.
        let mut big = b"GET /x HTTP/1.1\r\n".to_vec();
        while big.len() <= MAX_HEAD {
            big.extend_from_slice(b"x-pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        big.extend_from_slice(b"\r\n");
        assert!(matches!(
            frame_request(&big),
            FrameStatus::Malformed { status: 431, .. }
        ));
        // Body split across arrivals: head-complete partial until the last
        // byte lands.
        let post = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        match frame_request(&post[..post.len() - 1]) {
            FrameStatus::Partial { head_complete } => assert!(head_complete),
            other => panic!("expected head-complete partial, got {other:?}"),
        }
        assert!(matches!(
            frame_request(post),
            FrameStatus::Complete { len } if len == post.len()
        ));
    }

    #[test]
    fn encode_response_matches_write_response() {
        let mut via_writer = Vec::new();
        write_response(&mut via_writer, 410, b"{}", false).unwrap();
        assert_eq!(encode_response(410, b"{}", false), via_writer);
        assert!(String::from_utf8(via_writer).unwrap().contains("410 Gone"));
    }

    #[test]
    fn extra_headers_land_before_the_blank_line() {
        let bytes = encode_response_with(503, b"{}", false, &[("retry-after", "1")]);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text[..head_end].contains("retry-after: 1"));
        assert!(text.ends_with("\r\n\r\n{}"));
        // No extras → byte-identical to the plain encoder.
        assert_eq!(
            encode_response_with(200, b"{}", true, &[]),
            encode_response(200, b"{}", true)
        );
    }

    #[test]
    fn keep_alive_sequencing_on_one_stream() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut stream = BufReader::new(raw.as_bytes());
        let ReadOutcome::Ok(a) = read_request(&mut stream).unwrap() else {
            panic!()
        };
        let ReadOutcome::Ok(b) = read_request(&mut stream).unwrap() else {
            panic!()
        };
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert!(matches!(
            read_request(&mut stream).unwrap(),
            ReadOutcome::Closed
        ));
    }
}
