//! Hand-rolled HTTP/1.1 request parsing and response writing — just enough
//! protocol for a loopback JSON API, std-only.
//!
//! Supported: request line + headers, `Content-Length` bodies, keep-alive
//! (the HTTP/1.1 default) and `Connection: close`. Not supported (rejected
//! cleanly): chunked transfer encoding, upgrades, multi-line headers.
//! Header and body sizes are capped so a misbehaving client cannot balloon
//! a worker's memory.

use std::io::{self, BufRead, Write};

/// Longest accepted request head (request line + headers), bytes.
const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted body, bytes (observation lists on million-node graphs
/// fit comfortably; anything bigger is a client bug).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path with any `?query` suffix stripped.
    pub path: String,
    /// Lowercased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-delimited; empty if absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Path split into non-empty segments: `/sessions/s1/next` →
    /// `["sessions", "s1", "next"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Outcome of reading one request off a connection.
pub enum ReadOutcome {
    /// A complete request.
    Ok(Request),
    /// Clean EOF before any bytes — the peer closed an idle keep-alive
    /// connection; not an error.
    Closed,
    /// The peer sent something unusable; the caller should answer with this
    /// status and close.
    Malformed(u16, String),
}

/// Reads one HTTP/1.1 request from `stream`.
pub fn read_request<R: BufRead>(stream: &mut R) -> io::Result<ReadOutcome> {
    // Request line + headers, byte-capped (including any single oversized
    // line — the budget is bytes consumed so far, not line count).
    let mut head: Vec<Vec<u8>> = Vec::new();
    let mut head_bytes = 0usize;
    loop {
        if head_bytes >= MAX_HEAD {
            // Also guards the leading-blank-line tolerance below from being
            // fed forever.
            return Ok(ReadOutcome::Malformed(431, "request head too large".into()));
        }
        let mut line = Vec::new();
        let n = match read_line_crlf(stream, &mut line, MAX_HEAD - head_bytes) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Ok(ReadOutcome::Malformed(431, "request head too large".into()));
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(if head.is_empty() && head_bytes == 0 {
                ReadOutcome::Closed
            } else {
                ReadOutcome::Malformed(400, "connection closed mid-header".into())
            });
        }
        head_bytes += n;
        if line.is_empty() {
            if head.is_empty() {
                // Tolerate leading blank lines per RFC 9112 §2.2.
                continue;
            }
            break;
        }
        head.push(line);
        if head_bytes > MAX_HEAD {
            return Ok(ReadOutcome::Malformed(431, "request head too large".into()));
        }
    }

    let request_line = String::from_utf8_lossy(&head[0]).into_owned();
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Malformed(400, "bad request line".into()));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(
            505,
            "unsupported HTTP version".into(),
        ));
    }

    let mut headers = Vec::with_capacity(head.len() - 1);
    for line in &head[1..] {
        let text = String::from_utf8_lossy(line);
        let Some((name, value)) = text.split_once(':') else {
            return Ok(ReadOutcome::Malformed(400, "bad header line".into()));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method: method.to_ascii_uppercase(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        headers,
        body: Vec::new(),
    };

    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(ReadOutcome::Malformed(
            501,
            "chunked transfer encoding not supported".into(),
        ));
    }
    if let Some(len) = req.header("content-length") {
        let Ok(len) = len.parse::<usize>() else {
            return Ok(ReadOutcome::Malformed(400, "bad content-length".into()));
        };
        if len > MAX_BODY {
            return Ok(ReadOutcome::Malformed(413, "body too large".into()));
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        req.body = body;
    }
    Ok(ReadOutcome::Ok(req))
}

/// Reads one CRLF- (or bare-LF-) terminated line into `out` (terminator
/// stripped). Returns bytes consumed; 0 means EOF. Errors if the line
/// exceeds `limit`.
fn read_line_crlf<R: BufRead>(
    stream: &mut R,
    out: &mut Vec<u8>,
    limit: usize,
) -> io::Result<usize> {
    let mut consumed = 0usize;
    loop {
        let buf = stream.fill_buf()?;
        if buf.is_empty() {
            return Ok(consumed);
        }
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            out.extend_from_slice(&buf[..nl]);
            stream.consume(nl + 1);
            consumed += nl + 1;
            if out.last() == Some(&b'\r') {
                out.pop();
            }
            return Ok(consumed);
        }
        let n = buf.len();
        out.extend_from_slice(buf);
        stream.consume(n);
        consumed += n;
        if consumed > limit {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
    }
}

/// Writes a JSON response. `keep_alive` controls the `Connection` header;
/// the caller decides whether to actually keep reading.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Minimal reason-phrase table for the statuses the API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Status",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_post_with_body() {
        let out = parse(
            "POST /sessions/s1/next?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        );
        let ReadOutcome::Ok(req) = out else {
            panic!("expected Ok")
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions/s1/next");
        assert_eq!(req.segments(), vec!["sessions", "s1", "next"]);
        assert_eq!(req.body, b"{\"a\":1}");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_close_header() {
        let ReadOutcome::Ok(req) = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!("expected Ok")
        };
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_closed_not_error() {
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn malformed_inputs_get_statuses() {
        let cases: Vec<(&str, u16)> = vec![
            ("GARBAGE\r\n\r\n", 400),
            ("GET /x SPDY/3\r\n\r\n", 505),
            ("GET /x HTTP/1.1\r\nbadheader\r\n\r\n", 400),
            ("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
        ];
        for (raw, want) in cases {
            match parse(raw) {
                ReadOutcome::Malformed(status, _) => assert_eq!(status, want, "{raw:?}"),
                _ => panic!("{raw:?} should be malformed"),
            }
        }
    }

    #[test]
    fn oversized_single_header_line_gets_431_not_a_dropped_connection() {
        let raw = format!("GET /x HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        match read_request(&mut BufReader::new(raw.as_bytes())).unwrap() {
            ReadOutcome::Malformed(status, _) => assert_eq!(status, 431),
            _ => panic!("expected 431"),
        }
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn keep_alive_sequencing_on_one_stream() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut stream = BufReader::new(raw.as_bytes());
        let ReadOutcome::Ok(a) = read_request(&mut stream).unwrap() else {
            panic!()
        };
        let ReadOutcome::Ok(b) = read_request(&mut stream).unwrap() else {
            panic!()
        };
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert!(matches!(
            read_request(&mut stream).unwrap(),
            ReadOutcome::Closed
        ));
    }
}
