//! Per-server metrics behind `GET /metrics`.
//!
//! Each [`AppState`] owns one [`ServeMetrics`]: an `atpm_obs::Registry`
//! holding every operational counter the server exposes — the overload /
//! durability counters `/healthz` reports (queue depth, sheds, recovered
//! sessions, draining), session lifecycle counters, per-route and
//! whole-request latency histograms, journal timings, and the
//! connection-plane [`NetMetrics`] shared with the `atpm-net` reactor.
//! `/healthz` reads *through* these same atomics, so the two endpoints can
//! never disagree about a value.
//!
//! The exposition merges this per-server registry with the process-global
//! one ([`atpm_obs::global`]), which is where library crates with no
//! registry to hand (RIS stage timers, Monte-Carlo lane timers) register.
//!
//! ## Recording discipline (pool/epoll byte-identity)
//!
//! Both backends record request metrics strictly *after*
//! [`respond`](crate::server::respond) returns — and the exposition is
//! rendered *inside* respond — so the scrape request is never counted in
//! its own output. Combined with the pool backend mirroring the reactor's
//! connection counters at equivalent points (accept, pre-dispatch, close),
//! a fresh server's first `/metrics` response is byte-identical across
//! backends, the same differential-oracle property `/healthz` has.

use std::sync::{Arc, Weak};
use std::time::Instant;

use atpm_net::fault;
use atpm_net::NetMetrics;
use atpm_obs::{Counter, Gauge, Histogram, Registry};

use crate::server::AppState;

/// Route labels for `atpm_http_route_seconds`, in registration (and
/// therefore stable exposition) order. The last entry absorbs anything the
/// router 404s.
pub const ROUTE_KEYS: [&str; 17] = [
    "healthz",
    "metrics",
    "snapshots_list",
    "snapshots_create",
    "snapshot_info",
    "snapshot_delete",
    "estimate",
    "session_create",
    "session_next",
    "session_next_batch",
    "session_observe",
    "session_observe_batch",
    "session_ledger",
    "session_delete",
    "debug_profile",
    "debug_events",
    "other",
];

/// Maps a request to its [`ROUTE_KEYS`] slot. Mirrors the router's match
/// arms; unknown shapes land in `"other"` so the histogram family is a
/// fixed, bounded set no client can grow.
pub fn route_index(method: &str, path: &str) -> usize {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => 0,
        ("GET", ["metrics"]) => 1,
        ("GET", ["snapshots"]) => 2,
        ("POST", ["snapshots"]) => 3,
        ("GET", ["snapshots", _]) => 4,
        ("DELETE", ["snapshots", _]) => 5,
        ("POST", ["snapshots", _, "estimate"]) => 6,
        ("POST", ["sessions"]) => 7,
        ("POST", ["sessions", _, "next"]) => 8,
        ("POST", ["sessions", _, "next_batch"]) => 9,
        ("POST", ["sessions", _, "observe"]) => 10,
        ("POST", ["sessions", _, "observe_batch"]) => 11,
        ("GET", ["sessions", _, "ledger"]) => 12,
        ("DELETE", ["sessions", _]) => 13,
        ("GET", ["debug", "profile"]) => 14,
        ("GET", ["debug", "events"]) => 15,
        _ => 16,
    }
}

/// Every metric one running server owns. Handles are plain `Arc`s over
/// atomics — recording never locks; the registry mutex is touched only at
/// construction and render.
pub struct ServeMetrics {
    /// The per-server registry rendered (merged with the global one) by
    /// `GET /metrics`.
    pub registry: Registry,
    /// Connection-plane counters shared with the reactor shards (and
    /// mirrored by the pool backend at equivalent points).
    pub net: Arc<NetMetrics>,
    /// Jobs accepted but not yet picked up by a worker (epoll backend; the
    /// pool backend's queue is the kernel accept backlog, so it stays 0).
    pub queue_depth: Arc<Gauge>,
    /// Shed threshold: dispatches at `queue_depth >= max_queue` answer
    /// `503 Retry-After`. 0 disables.
    pub max_queue: Arc<Gauge>,
    /// 1 while graceful drain is in progress.
    pub draining: Arc<Gauge>,
    /// Requests shed with 503 since boot.
    pub shed_503: Arc<Counter>,
    /// Sessions rebuilt from the journal at the last boot.
    pub recovered_sessions: Arc<Counter>,
    /// Sessions opened over the API since boot (journal replays excluded).
    pub sessions_created: Arc<Counter>,
    /// Sessions closed by `DELETE` since boot (replays excluded).
    pub sessions_deleted: Arc<Counter>,
    /// Sessions evicted by the expiry sweep since boot.
    pub sessions_expired: Arc<Counter>,
    /// Wall time of `respond` per request, all routes.
    pub request_seconds: Arc<Histogram>,
    /// Wall time of `respond` per request, split by [`ROUTE_KEYS`].
    pub route_seconds: [Arc<Histogram>; ROUTE_KEYS.len()],
    /// Dispatch → worker-pickup wait (epoll backend only).
    pub queue_wait_seconds: Arc<Histogram>,
    /// One journal record append (write + flush).
    pub journal_append_seconds: Arc<Histogram>,
    /// One journal fsync (shutdown durability barrier).
    pub journal_fsync_seconds: Arc<Histogram>,
    /// Journal replay at boot (one value per boot that replayed).
    pub journal_replay_seconds: Arc<Histogram>,
    /// One checkpoint cycle (rotate + serialize + fsync + retire).
    pub journal_checkpoint_seconds: Arc<Histogram>,
    /// Torn (partially written / corrupt) journal tails truncated at open.
    pub journal_torn_tail: Arc<Counter>,
}

impl ServeMetrics {
    /// Builds the registry and registers every owned metric plus the
    /// render-time fault-injection counters (process-wide tallies from
    /// `atpm_net::fault` — one source of truth, no shadow copy).
    pub fn new() -> ServeMetrics {
        // Process-wide runtime metrics (RSS / CPU / fds, trace- and
        // profile-drop counters) live on the global registry; registering
        // here is idempotent (last registration wins) and keeps them out of
        // library-crate init paths.
        atpm_obs::register_runtime_metrics();
        let registry = Registry::new();
        let net = NetMetrics::register(&registry);
        const ROUTE_HELP: &str = "Request handling wall time by route, seconds";
        let route_seconds = std::array::from_fn(|i| {
            registry.histogram_with(
                "atpm_http_route_seconds",
                &[("route", ROUTE_KEYS[i])],
                ROUTE_HELP,
            )
        });
        let metrics = ServeMetrics {
            net,
            queue_depth: registry.gauge(
                "atpm_serve_queue_depth",
                "Jobs dispatched but not yet picked up by a worker",
            ),
            max_queue: registry.gauge(
                "atpm_serve_max_queue",
                "Shed threshold for the dispatch queue (0 = shedding disabled)",
            ),
            draining: registry.gauge(
                "atpm_serve_draining",
                "1 while graceful shutdown is draining in-flight work",
            ),
            shed_503: registry.counter(
                "atpm_serve_shed_503_total",
                "Requests shed with 503 Retry-After under overload",
            ),
            recovered_sessions: registry.counter(
                "atpm_serve_recovered_sessions_total",
                "Sessions rebuilt from the journal at boot",
            ),
            sessions_created: registry.counter(
                "atpm_serve_sessions_created_total",
                "Sessions opened over the API",
            ),
            sessions_deleted: registry.counter(
                "atpm_serve_sessions_deleted_total",
                "Sessions closed by DELETE",
            ),
            sessions_expired: registry.counter(
                "atpm_serve_sessions_expired_total",
                "Sessions evicted by the idle-expiry sweep",
            ),
            request_seconds: registry.histogram(
                "atpm_http_request_seconds",
                "Request handling wall time, all routes, seconds",
            ),
            route_seconds,
            queue_wait_seconds: registry.histogram(
                "atpm_http_queue_wait_seconds",
                "Dispatch-to-worker-pickup wait (epoll backend), seconds",
            ),
            journal_append_seconds: registry.histogram(
                "atpm_journal_append_seconds",
                "Session journal record append (write + flush), seconds",
            ),
            journal_fsync_seconds: registry.histogram(
                "atpm_journal_fsync_seconds",
                "Session journal fsync durability barrier, seconds",
            ),
            journal_replay_seconds: registry.histogram(
                "atpm_journal_replay_seconds",
                "Session journal replay at boot, seconds",
            ),
            journal_checkpoint_seconds: registry.histogram(
                "atpm_journal_checkpoint_seconds",
                "Session checkpoint cycle (rotate + serialize + fsync), seconds",
            ),
            journal_torn_tail: registry.counter(
                "atpm_serve_journal_torn_tail_total",
                "Torn journal/checkpoint tails truncated during recovery",
            ),
            registry,
        };
        for (site, label) in fault::SITES {
            metrics.registry.counter_fn(
                "atpm_net_fault_injected_total",
                &[("site", label)],
                "Syscall faults injected at this site (process-wide)",
                move || fault::injected_total(site),
            );
        }
        for (site, label) in crate::journal::IO_SITES {
            metrics.registry.counter_fn(
                "atpm_serve_journal_fault_injected_total",
                &[("site", label)],
                "Journal file-I/O faults injected at this site (process-wide)",
                move || crate::journal::injected_total(site),
            );
        }
        metrics
    }

    /// Registers the live-session gauge over `state` (weakly, so the
    /// registry inside `AppState` doesn't keep the state alive). Called
    /// once by [`AppState::new`].
    pub(crate) fn bind_state(&self, state: &Arc<AppState>) {
        let weak: Weak<AppState> = Arc::downgrade(state);
        self.registry.gauge_fn(
            "atpm_serve_sessions_active",
            &[],
            "Live sessions (same source of truth as /healthz 'sessions')",
            move || weak.upgrade().map_or(0, |s| s.manager.len() as i64),
        );
    }

    /// Registers the event-log drop counter over this server's bounded
    /// `/debug/events` ring. Called once by [`AppState::new`].
    pub(crate) fn bind_events(&self, events: &Arc<atpm_obs::EventLog>) {
        let weak = Arc::downgrade(events);
        self.registry.counter_fn(
            "atpm_serve_events_dropped_total",
            &[],
            "Structured event records evicted from the /debug/events ring",
            move || weak.upgrade().map_or(0, |e| e.dropped()),
        );
    }

    /// Renders the Prometheus text exposition: this server's registry
    /// merged with the process-global one (RIS/MC stage timers).
    pub fn render(&self) -> String {
        atpm_obs::render(&[&self.registry, atpm_obs::global()])
    }

    /// Records one completed request (started at `t0`, just returned from
    /// `respond`) into the whole-server and per-route histograms. Both
    /// backends call this strictly after `respond`, which is what keeps a
    /// scrape from counting itself.
    pub fn record_request(&self, method: &str, path: &str, t0: Instant) {
        let dur = t0.elapsed();
        self.request_seconds.record_duration(dur);
        self.route_seconds[route_index(method, path)].record_duration(dur);
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_index_covers_the_protocol_surface() {
        let cases = [
            ("GET", "/healthz", "healthz"),
            ("GET", "/metrics", "metrics"),
            ("GET", "/snapshots", "snapshots_list"),
            ("POST", "/snapshots", "snapshots_create"),
            ("GET", "/snapshots/g", "snapshot_info"),
            ("DELETE", "/snapshots/g", "snapshot_delete"),
            ("POST", "/snapshots/g/estimate", "estimate"),
            ("POST", "/sessions", "session_create"),
            ("POST", "/sessions/s1/next", "session_next"),
            ("POST", "/sessions/s1/next_batch", "session_next_batch"),
            ("POST", "/sessions/s1/observe", "session_observe"),
            ("POST", "/sessions/s1/observe_batch", "session_observe_batch"),
            ("GET", "/sessions/s1/ledger", "session_ledger"),
            ("DELETE", "/sessions/s1", "session_delete"),
            ("GET", "/debug/profile", "debug_profile"),
            ("GET", "/debug/events", "debug_events"),
            ("POST", "/debug/profile", "other"),
            ("PATCH", "/healthz", "other"),
            ("GET", "/nope", "other"),
        ];
        for (method, path, want) in cases {
            assert_eq!(
                ROUTE_KEYS[route_index(method, path)],
                want,
                "{method} {path}"
            );
        }
    }

    #[test]
    fn render_includes_every_family_and_passes_lint() {
        let m = ServeMetrics::new();
        m.shed_503.inc();
        m.request_seconds.record(1_000_000);
        let text = m.render();
        atpm_obs::lint(&text).expect("exposition must lint clean");
        for family in [
            "atpm_net_accepted_total",
            "atpm_serve_queue_depth",
            "atpm_serve_shed_503_total",
            "atpm_http_request_seconds",
            "atpm_http_route_seconds",
            "atpm_net_fault_injected_total",
            "atpm_journal_append_seconds",
            "atpm_journal_checkpoint_seconds",
            "atpm_serve_journal_torn_tail_total",
            "atpm_serve_journal_fault_injected_total",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
