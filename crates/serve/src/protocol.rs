//! The serve protocol's typed messages and their JSON wire forms.
//!
//! Every request/response the HTTP layer speaks has a struct here with
//! `to_json` / `from_json` converters, so the in-process
//! [`LocalClient`](crate::client::LocalClient), the socket
//! [`HttpClient`](crate::client::HttpClient), the router, and the tests all
//! share one definition of the wire format.
//!
//! ```text
//! POST   /snapshots                      SnapshotReq      -> SnapshotInfo
//! GET    /snapshots                                       -> [SnapshotInfo]
//! GET    /snapshots/:name                                 -> SnapshotInfo
//! POST   /snapshots/:name/estimate       EstimateReq      -> EstimateResp
//! DELETE /snapshots/:name                                 -> {}
//! POST   /sessions                       CreateSessionReq -> CreateSessionResp
//! POST   /sessions/:id/next                               -> NextResp
//! POST   /sessions/:id/observe           ObserveReq       -> ObserveResp
//! POST   /sessions/:id/next_batch        NextBatchReq     -> NextResp
//! POST   /sessions/:id/observe_batch     ObserveBatchReq  -> ObserveResp
//! GET    /sessions/:id/ledger                             -> Ledger
//! DELETE /sessions/:id                                    -> {}
//! GET    /healthz                                         -> {"ok":true}
//! ```

use atpm_core::policies::{Ars, DeployAll, Hatp, ThresholdBatch};
use atpm_core::PolicyStepper;
use atpm_graph::Node;

use crate::json::Json;

/// A protocol-level failure: HTTP status + message. The router turns this
/// into an error response body `{"error": message}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

impl ApiError {
    /// Convenience constructor.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        ApiError {
            status,
            message: message.into(),
        }
    }

    /// 400 with a message.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }

    /// 404 for a named thing.
    pub fn not_found(what: &str, name: &str) -> Self {
        Self::new(404, format!("{what} '{name}' not found"))
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for ApiError {}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ApiError> {
    v.get(key)
        .ok_or_else(|| ApiError::bad_request(format!("missing field '{key}'")))
}

fn str_field(v: &Json, key: &str) -> Result<String, ApiError> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be a string")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, ApiError> {
    field(v, key)?.as_u64().ok_or_else(|| {
        ApiError::bad_request(format!("field '{key}' must be a nonnegative integer"))
    })
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
            ApiError::bad_request(format!("field '{key}' must be a nonnegative integer"))
        }),
    }
}

/// Most sampler threads a wire request may ask for. The cap is a fixed
/// constant, not the machine's parallelism, because `threads` is part of
/// the deterministic sampling contract (results are a function of
/// `(input, seed, threads)` and must not depend on the serving host); it
/// only exists so wire input cannot make the server spawn an unbounded
/// number of OS threads per round.
pub const MAX_WIRE_THREADS: u64 = 64;

/// Parses an optional worker-thread count, bounded by
/// [`MAX_WIRE_THREADS`]. Over-asking is a client error, not a clamp —
/// silently changing `threads` would silently change the sampled worlds.
fn opt_threads(v: &Json) -> Result<usize, ApiError> {
    let requested = opt_u64(v, "threads")?.unwrap_or(1).max(1);
    if requested > MAX_WIRE_THREADS {
        return Err(ApiError::bad_request(format!(
            "threads = {requested} exceeds the cap of {MAX_WIRE_THREADS}"
        )));
    }
    Ok(requested as usize)
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, ApiError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be a number"))),
    }
}

/// Parses a JSON array of node ids.
pub fn nodes_field(v: &Json, key: &str) -> Result<Vec<Node>, ApiError> {
    let arr = field(v, key)?
        .as_arr()
        .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be an array")))?;
    arr.iter()
        .map(|x| {
            x.as_u64()
                .and_then(|id| u32::try_from(id).ok())
                .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must hold node ids")))
        })
        .collect()
}

/// Which adaptive policy a session runs, with its knobs. This is the
/// dynamically-configured face of the policy zoo: specs arrive as JSON,
/// construct steppers at runtime, and report composed display names.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// HATP (Algorithm 4) with optional overrides of the paper defaults.
    Hatp {
        /// Relative-error threshold ε (default 0.05).
        eps_threshold: Option<f64>,
        /// Per-round RR-set cap (default unlimited).
        max_theta: Option<usize>,
        /// Sampling RNG seed.
        seed: u64,
        /// Sampler worker threads (default 1 — the server already runs one
        /// thread per connection).
        threads: usize,
    },
    /// Adaptive random set with selection probability `prob`.
    Ars {
        /// Selection probability (default 0.5).
        prob: f64,
        /// Coin RNG seed (mixed with the session's world seed).
        seed: u64,
    },
    /// Seed every target that is still inactive.
    DeployAll,
    /// Low-adaptivity threshold-sampling batch policy (beyond the paper;
    /// selects whole batches per sampling round — pair with `next_batch`).
    ThresholdBatch {
        /// Fresh RR sets per round (default 4000).
        theta: usize,
        /// Threshold decay per sweep, in (0, 1) (default 0.1).
        eps: f64,
        /// Default batch size for drives that don't pass `k` per round
        /// (default 4).
        batch: usize,
        /// Sampling RNG seed.
        seed: u64,
        /// Sampler worker threads.
        threads: usize,
    },
}

impl PolicySpec {
    /// Parses the `"policy"` object of a session-creation request.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        let name = str_field(v, "name")?;
        match name.as_str() {
            "hatp" => Ok(PolicySpec::Hatp {
                eps_threshold: opt_f64(v, "eps_threshold")?,
                max_theta: opt_u64(v, "max_theta")?.map(|x| x as usize),
                seed: opt_u64(v, "seed")?.unwrap_or(0),
                threads: opt_threads(v)?,
            }),
            "ars" => Ok(PolicySpec::Ars {
                prob: opt_f64(v, "prob")?.unwrap_or(0.5),
                seed: opt_u64(v, "seed")?.unwrap_or(0),
            }),
            "deploy_all" => Ok(PolicySpec::DeployAll),
            "threshold_batch" => Ok(PolicySpec::ThresholdBatch {
                theta: opt_u64(v, "theta")?.unwrap_or(4_000) as usize,
                eps: opt_f64(v, "eps")?.unwrap_or(0.1),
                batch: opt_u64(v, "batch")?.unwrap_or(4) as usize,
                seed: opt_u64(v, "seed")?.unwrap_or(0),
                threads: opt_threads(v)?,
            }),
            other => Err(ApiError::bad_request(format!(
                "unknown policy '{other}' (expected hatp | ars | deploy_all | threshold_batch)"
            ))),
        }
    }

    /// The wire form accepted by [`from_json`](Self::from_json).
    pub fn to_json(&self) -> Json {
        match self {
            PolicySpec::Hatp {
                eps_threshold,
                max_theta,
                seed,
                threads,
            } => {
                let mut pairs = vec![
                    ("name", Json::Str("hatp".into())),
                    ("seed", Json::UInt(*seed)),
                    ("threads", Json::UInt(*threads as u64)),
                ];
                if let Some(e) = eps_threshold {
                    pairs.push(("eps_threshold", Json::Num(*e)));
                }
                if let Some(t) = max_theta {
                    pairs.push(("max_theta", Json::UInt(*t as u64)));
                }
                Json::obj(pairs)
            }
            PolicySpec::Ars { prob, seed } => Json::obj([
                ("name", Json::Str("ars".into())),
                ("prob", Json::Num(*prob)),
                ("seed", Json::UInt(*seed)),
            ]),
            PolicySpec::DeployAll => Json::obj([("name", Json::Str("deploy_all".into()))]),
            PolicySpec::ThresholdBatch {
                theta,
                eps,
                batch,
                seed,
                threads,
            } => Json::obj([
                ("name", Json::Str("threshold_batch".into())),
                ("theta", Json::UInt(*theta as u64)),
                ("eps", Json::Num(*eps)),
                ("batch", Json::UInt(*batch as u64)),
                ("seed", Json::UInt(*seed)),
                ("threads", Json::UInt(*threads as u64)),
            ]),
        }
    }

    /// Builds the stepper this spec describes. Validates knob ranges.
    pub fn build(&self) -> Result<Box<dyn PolicyStepper>, ApiError> {
        match self {
            PolicySpec::Hatp {
                eps_threshold,
                max_theta,
                seed,
                threads,
            } => {
                let mut cfg = Hatp {
                    seed: *seed,
                    threads: *threads,
                    ..Default::default()
                };
                if let Some(e) = eps_threshold {
                    if !(*e > 0.0 && *e <= cfg.eps0) {
                        return Err(ApiError::bad_request(
                            "eps_threshold must be in (0, 0.5]".to_string(),
                        ));
                    }
                    cfg.eps_threshold = *e;
                }
                if let Some(t) = max_theta {
                    cfg.max_theta = *t;
                }
                Ok(Box::new(cfg.stepper()))
            }
            PolicySpec::Ars { prob, seed } => {
                if !(0.0..=1.0).contains(prob) {
                    return Err(ApiError::bad_request("prob must be in [0, 1]".to_string()));
                }
                Ok(Box::new(
                    Ars {
                        prob: *prob,
                        seed: *seed,
                    }
                    .stepper(),
                ))
            }
            PolicySpec::DeployAll => Ok(Box::new(DeployAll.stepper())),
            PolicySpec::ThresholdBatch {
                theta,
                eps,
                batch,
                seed,
                threads,
            } => {
                if *theta == 0 {
                    return Err(ApiError::bad_request("theta must be positive".to_string()));
                }
                if !(*eps > 0.0 && *eps < 1.0) {
                    return Err(ApiError::bad_request("eps must be in (0, 1)".to_string()));
                }
                if *batch == 0 {
                    return Err(ApiError::bad_request(
                        "batch size must be positive".to_string(),
                    ));
                }
                Ok(Box::new(
                    ThresholdBatch {
                        theta: *theta,
                        eps: *eps,
                        batch: *batch,
                        seed: *seed,
                        threads: *threads,
                    }
                    .stepper(),
                ))
            }
        }
    }
}

/// `POST /snapshots` — load a named snapshot into the store.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotReq {
    /// Store key.
    pub name: String,
    /// Where the graph comes from.
    pub source: SnapshotSource,
    /// Target-set size for the calibrated instance.
    pub k: usize,
    /// RR sets to pre-freeze for warm-started estimate queries.
    pub rr_theta: usize,
    /// Construction RNG seed (IMM target selection, calibration, RR index).
    pub seed: u64,
    /// Sampler threads used while building.
    pub threads: usize,
}

/// Graph source of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotSource {
    /// A Table II preset stand-in generated at `scale`.
    Preset {
        /// Dataset name (`nethept`, `epinions`, `dblp`, `livejournal`).
        dataset: String,
        /// Generation scale in (0, 1].
        scale: f64,
    },
    /// A graph file (`ATPMGRF1` binary or text edge list, auto-sniffed).
    File {
        /// Path on the server's filesystem.
        path: String,
        /// Probability for two-column edge-list lines.
        default_prob: f64,
    },
}

impl SnapshotReq {
    /// Parses the request body.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        let source = if v.get("preset").is_some() {
            SnapshotSource::Preset {
                dataset: str_field(v, "preset")?,
                scale: opt_f64(v, "scale")?.unwrap_or(0.02),
            }
        } else if v.get("path").is_some() {
            SnapshotSource::File {
                path: str_field(v, "path")?,
                default_prob: opt_f64(v, "default_prob")?.unwrap_or(0.1),
            }
        } else {
            return Err(ApiError::bad_request(
                "snapshot needs either 'preset' or 'path'".to_string(),
            ));
        };
        Ok(SnapshotReq {
            name: str_field(v, "name")?,
            source,
            k: u64_field(v, "k")? as usize,
            rr_theta: opt_u64(v, "rr_theta")?.unwrap_or(20_000) as usize,
            seed: opt_u64(v, "seed")?.unwrap_or(0),
            threads: opt_threads(v)?,
        })
    }

    /// The wire form accepted by [`from_json`](Self::from_json).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("k", Json::UInt(self.k as u64)),
            ("rr_theta", Json::UInt(self.rr_theta as u64)),
            ("seed", Json::UInt(self.seed)),
            ("threads", Json::UInt(self.threads as u64)),
        ];
        match &self.source {
            SnapshotSource::Preset { dataset, scale } => {
                pairs.push(("preset", Json::Str(dataset.clone())));
                pairs.push(("scale", Json::Num(*scale)));
            }
            SnapshotSource::File { path, default_prob } => {
                pairs.push(("path", Json::Str(path.clone())));
                pairs.push(("default_prob", Json::Num(*default_prob)));
            }
        }
        Json::obj(pairs)
    }
}

/// `POST /sessions` — open an adaptive session on a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateSessionReq {
    /// Snapshot to run against.
    pub snapshot: String,
    /// Policy to drive.
    pub policy: PolicySpec,
    /// Possible-world seed (the paper's φ).
    pub world_seed: u64,
}

impl CreateSessionReq {
    /// Parses the request body.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        Ok(CreateSessionReq {
            snapshot: str_field(v, "snapshot")?,
            policy: PolicySpec::from_json(field(v, "policy")?)?,
            world_seed: u64_field(v, "world_seed")?,
        })
    }

    /// The wire form accepted by [`from_json`](Self::from_json).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("snapshot", Json::Str(self.snapshot.clone())),
            ("policy", self.policy.to_json()),
            ("world_seed", Json::UInt(self.world_seed)),
        ])
    }
}

/// `POST /sessions/:id/observe` — report how a committed seed's cascade
/// realized.
#[derive(Debug, Clone, PartialEq)]
pub enum ObserveReq {
    /// The server simulates the cascade against the session's own world
    /// (closed-loop benchmarking, protocol tests).
    Simulate {
        /// The seed returned by the last `next` call.
        seed: Node,
    },
    /// The caller reports externally realized activations (a live
    /// deployment feeding real feedback).
    Report {
        /// The seed returned by the last `next` call.
        seed: Node,
        /// Every node observed active after the seed's cascade.
        activated: Vec<Node>,
    },
}

impl ObserveReq {
    /// The seed this observation is for.
    pub fn seed(&self) -> Node {
        match self {
            ObserveReq::Simulate { seed } | ObserveReq::Report { seed, .. } => *seed,
        }
    }

    /// Parses the request body.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        let seed = u64_field(v, "seed")?;
        let seed =
            u32::try_from(seed).map_err(|_| ApiError::bad_request("seed id out of range"))?;
        if v.get("simulate").and_then(Json::as_bool).unwrap_or(false) {
            Ok(ObserveReq::Simulate { seed })
        } else {
            Ok(ObserveReq::Report {
                seed,
                activated: nodes_field(v, "activated")?,
            })
        }
    }

    /// The wire form accepted by [`from_json`](Self::from_json).
    pub fn to_json(&self) -> Json {
        match self {
            ObserveReq::Simulate { seed } => Json::obj([
                ("seed", Json::UInt(u64::from(*seed))),
                ("simulate", Json::Bool(true)),
            ]),
            ObserveReq::Report { seed, activated } => Json::obj([
                ("seed", Json::UInt(u64::from(*seed))),
                ("activated", Json::nums(activated.iter().copied())),
            ]),
        }
    }
}

/// Most seeds a wire request may ask for in one batch round. Purely an
/// abuse bound — real batch sizes are small (adaptivity trades quality
/// away as `k` grows).
pub const MAX_WIRE_BATCH: u64 = 4_096;

/// `POST /sessions/:id/next_batch` — ask the policy for its next batch of
/// up to `k` seeds, decided against one residual state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NextBatchReq {
    /// Upper bound on the number of seeds in the round.
    pub k: usize,
}

impl NextBatchReq {
    /// Parses the request body.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        let k = u64_field(v, "k")?;
        if k == 0 {
            return Err(ApiError::bad_request("k must be positive".to_string()));
        }
        if k > MAX_WIRE_BATCH {
            return Err(ApiError::bad_request(format!(
                "k = {k} exceeds the cap of {MAX_WIRE_BATCH}"
            )));
        }
        Ok(NextBatchReq { k: k as usize })
    }

    /// The wire form accepted by [`from_json`](Self::from_json).
    pub fn to_json(&self) -> Json {
        Json::obj([("k", Json::UInt(self.k as u64))])
    }
}

/// `POST /sessions/:id/observe_batch` — report how a committed batch's
/// joint cascade realized. The batch generalization of [`ObserveReq`]:
/// `seeds` must be exactly the pending batch from the last `next_batch`.
#[derive(Debug, Clone, PartialEq)]
pub enum ObserveBatchReq {
    /// The server simulates the joint cascade against the session's world.
    Simulate {
        /// The batch returned by the last `next_batch` call, in order.
        seeds: Vec<Node>,
    },
    /// The caller reports externally realized activations.
    Report {
        /// The batch returned by the last `next_batch` call, in order.
        seeds: Vec<Node>,
        /// Every node observed active after the joint cascade.
        activated: Vec<Node>,
    },
}

impl ObserveBatchReq {
    /// The batch this observation is for.
    pub fn seeds(&self) -> &[Node] {
        match self {
            ObserveBatchReq::Simulate { seeds } | ObserveBatchReq::Report { seeds, .. } => seeds,
        }
    }

    /// Parses the request body.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        let seeds = nodes_field(v, "seeds")?;
        if v.get("simulate").and_then(Json::as_bool).unwrap_or(false) {
            Ok(ObserveBatchReq::Simulate { seeds })
        } else {
            Ok(ObserveBatchReq::Report {
                seeds,
                activated: nodes_field(v, "activated")?,
            })
        }
    }

    /// The wire form accepted by [`from_json`](Self::from_json).
    pub fn to_json(&self) -> Json {
        match self {
            ObserveBatchReq::Simulate { seeds } => Json::obj([
                ("seeds", Json::nums(seeds.iter().copied())),
                ("simulate", Json::Bool(true)),
            ]),
            ObserveBatchReq::Report { seeds, activated } => Json::obj([
                ("seeds", Json::nums(seeds.iter().copied())),
                ("activated", Json::nums(activated.iter().copied())),
            ]),
        }
    }

    /// The single-seed form of this observation, when the batch has exactly
    /// one seed (used to journal batch-of-one rounds compatibly).
    pub fn as_single(&self) -> Option<ObserveReq> {
        match self {
            ObserveBatchReq::Simulate { seeds } if seeds.len() == 1 => {
                Some(ObserveReq::Simulate { seed: seeds[0] })
            }
            ObserveBatchReq::Report { seeds, activated } if seeds.len() == 1 => {
                Some(ObserveReq::Report {
                    seed: seeds[0],
                    activated: activated.clone(),
                })
            }
            _ => None,
        }
    }
}

impl From<ObserveReq> for ObserveBatchReq {
    fn from(req: ObserveReq) -> Self {
        match req {
            ObserveReq::Simulate { seed } => ObserveBatchReq::Simulate { seeds: vec![seed] },
            ObserveReq::Report { seed, activated } => ObserveBatchReq::Report {
                seeds: vec![seed],
                activated,
            },
        }
    }
}

/// The profit ledger of a session (response of `observe` and `ledger`).
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    /// Policy display name.
    pub algorithm: String,
    /// Seeds committed so far, in selection order.
    pub selected: Vec<Node>,
    /// Realized profit `I_φ(S) − c(S)`.
    pub profit: f64,
    /// Nodes activated so far.
    pub total_activated: usize,
    /// Alive nodes remaining in the residual graph.
    pub num_alive: usize,
    /// RR sets generated by the policy so far.
    pub sampling_work: u64,
    /// Adaptivity rounds committed so far (one per observed batch; the
    /// single-seed protocol counts one round per seed).
    pub rounds: u64,
    /// Marginal-profit oracle queries spent by the policy so far (recorded
    /// by batch policies; zero for policies that predate the counter).
    pub oracle_queries: u64,
    /// Whether the policy has finished examining every candidate.
    pub done: bool,
}

impl Ledger {
    /// The wire form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("algorithm", Json::Str(self.algorithm.clone())),
            ("selected", Json::nums(self.selected.iter().copied())),
            ("profit", Json::Num(self.profit)),
            ("total_activated", Json::UInt(self.total_activated as u64)),
            ("num_alive", Json::UInt(self.num_alive as u64)),
            ("sampling_work", Json::UInt(self.sampling_work)),
            ("rounds", Json::UInt(self.rounds)),
            ("oracle_queries", Json::UInt(self.oracle_queries)),
            ("done", Json::Bool(self.done)),
        ])
    }

    /// Parses a response body.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        Ok(Ledger {
            algorithm: str_field(v, "algorithm")?,
            selected: nodes_field(v, "selected")?,
            profit: field(v, "profit")?
                .as_f64()
                .ok_or_else(|| ApiError::bad_request("profit must be a number"))?,
            total_activated: u64_field(v, "total_activated")? as usize,
            num_alive: u64_field(v, "num_alive")? as usize,
            sampling_work: u64_field(v, "sampling_work")?,
            rounds: opt_u64(v, "rounds")?.unwrap_or(0),
            oracle_queries: opt_u64(v, "oracle_queries")?.unwrap_or(0),
            done: field(v, "done")?
                .as_bool()
                .ok_or_else(|| ApiError::bad_request("done must be a boolean"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_specs_round_trip() {
        for spec in [
            PolicySpec::Hatp {
                eps_threshold: Some(0.25),
                max_theta: Some(1 << 16),
                seed: 7,
                threads: 2,
            },
            PolicySpec::Hatp {
                eps_threshold: None,
                max_theta: None,
                seed: 0,
                threads: 1,
            },
            PolicySpec::Ars { prob: 0.5, seed: 3 },
            PolicySpec::DeployAll,
            PolicySpec::ThresholdBatch {
                theta: 2_000,
                eps: 0.2,
                batch: 8,
                seed: 11,
                threads: 2,
            },
        ] {
            let json = spec.to_json();
            let parsed = PolicySpec::from_json(&Json::parse(&json.encode()).unwrap()).unwrap();
            assert_eq!(parsed, spec);
            assert!(spec.build().is_ok());
        }
    }

    #[test]
    fn policy_spec_rejects_bad_knobs() {
        assert!(PolicySpec::from_json(&Json::obj([("name", Json::Str("nope".into()))])).is_err());
        // Thread bomb: a wire request cannot demand unbounded OS threads.
        let bomb = Json::obj([
            ("name", Json::Str("hatp".into())),
            ("threads", Json::UInt(100_000_000)),
        ]);
        assert_eq!(PolicySpec::from_json(&bomb).unwrap_err().status, 400);
        let bad_eps = PolicySpec::Hatp {
            eps_threshold: Some(0.9),
            max_theta: None,
            seed: 0,
            threads: 1,
        };
        assert!(bad_eps.build().is_err());
        let bad_prob = PolicySpec::Ars { prob: 1.5, seed: 0 };
        assert!(bad_prob.build().is_err());
        let bad_batch_eps = PolicySpec::ThresholdBatch {
            theta: 1_000,
            eps: 1.0,
            batch: 4,
            seed: 0,
            threads: 1,
        };
        assert!(bad_batch_eps.build().is_err());
    }

    #[test]
    fn snapshot_and_session_requests_round_trip() {
        let snap = SnapshotReq {
            name: "g".into(),
            source: SnapshotSource::Preset {
                dataset: "nethept".into(),
                scale: 0.02,
            },
            k: 8,
            rr_theta: 10_000,
            seed: 1,
            threads: 1,
        };
        let parsed = SnapshotReq::from_json(&Json::parse(&snap.to_json().encode()).unwrap());
        assert_eq!(parsed.unwrap(), snap);

        let file = SnapshotReq {
            name: "f".into(),
            source: SnapshotSource::File {
                path: "/tmp/g.bin".into(),
                default_prob: 0.1,
            },
            k: 4,
            rr_theta: 5_000,
            seed: 2,
            threads: 2,
        };
        let parsed = SnapshotReq::from_json(&Json::parse(&file.to_json().encode()).unwrap());
        assert_eq!(parsed.unwrap(), file);

        let create = CreateSessionReq {
            snapshot: "g".into(),
            policy: PolicySpec::DeployAll,
            world_seed: 42,
        };
        let parsed = CreateSessionReq::from_json(&Json::parse(&create.to_json().encode()).unwrap());
        assert_eq!(parsed.unwrap(), create);
    }

    #[test]
    fn observe_requests_round_trip() {
        for req in [
            ObserveReq::Simulate { seed: 5 },
            ObserveReq::Report {
                seed: 5,
                activated: vec![5, 6, 7],
            },
        ] {
            let parsed = ObserveReq::from_json(&Json::parse(&req.to_json().encode()).unwrap());
            assert_eq!(parsed.unwrap(), req);
            assert_eq!(req.seed(), 5);
        }
    }

    #[test]
    fn batch_requests_round_trip() {
        let next = NextBatchReq { k: 4 };
        let parsed = NextBatchReq::from_json(&Json::parse(&next.to_json().encode()).unwrap());
        assert_eq!(parsed.unwrap(), next);
        assert!(NextBatchReq::from_json(&Json::obj([("k", Json::UInt(0))])).is_err());
        assert!(
            NextBatchReq::from_json(&Json::obj([("k", Json::UInt(MAX_WIRE_BATCH + 1))])).is_err()
        );

        for req in [
            ObserveBatchReq::Simulate { seeds: vec![5, 9] },
            ObserveBatchReq::Report {
                seeds: vec![5, 9],
                activated: vec![5, 6, 9],
            },
        ] {
            let parsed = ObserveBatchReq::from_json(&Json::parse(&req.to_json().encode()).unwrap());
            assert_eq!(parsed.unwrap(), req);
            assert_eq!(req.seeds(), &[5, 9]);
            assert!(req.as_single().is_none(), "two seeds have no single form");
        }
    }

    #[test]
    fn batch_of_one_observation_converts_both_ways() {
        for single in [
            ObserveReq::Simulate { seed: 7 },
            ObserveReq::Report {
                seed: 7,
                activated: vec![7, 8],
            },
        ] {
            let batch: ObserveBatchReq = single.clone().into();
            assert_eq!(batch.seeds(), &[7]);
            assert_eq!(batch.as_single(), Some(single));
        }
    }

    #[test]
    fn ledger_round_trips_profit_bits() {
        let ledger = Ledger {
            algorithm: "HATP".into(),
            selected: vec![3, 1, 4],
            profit: 1.0 / 3.0 - 7.25,
            total_activated: 9,
            num_alive: 91,
            sampling_work: 123_456,
            rounds: 3,
            oracle_queries: 42,
            done: false,
        };
        let parsed = Ledger::from_json(&Json::parse(&ledger.to_json().encode()).unwrap()).unwrap();
        assert_eq!(parsed.profit.to_bits(), ledger.profit.to_bits());
        assert_eq!(parsed, ledger);
    }
}
