//! The snapshot store: named, refcounted graph snapshots with a pre-frozen
//! RR index.
//!
//! A [`Snapshot`] bundles everything a session needs to start instantly:
//! the immutable [`TpmInstance`] (graph + IMM-selected targets + calibrated
//! costs) and a frozen [`RrCollection`] sampled at load time. Sessions and
//! estimate queries share the snapshot through an `Arc`, so creating a
//! session is O(1) in graph size — the expensive work (graph generation or
//! file load, IMM target selection, cost calibration, RR sampling +
//! index freeze) happens exactly once per snapshot, and concurrent readers
//! never contend: the store's `RwLock` is only held to look up or swap the
//! `Arc`, never while a query runs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use atpm_core::setup::{calibrated_instance, CalibrationConfig};
use atpm_core::{CostSplit, TpmInstance};
use atpm_graph::gen::Dataset;
use atpm_graph::io;
use atpm_ris::{generate_batch, CoverageScratch, RrCollection};

use crate::json::Json;
use crate::protocol::{ApiError, SnapshotReq, SnapshotSource};

/// A loaded snapshot: instance + warm RR index.
pub struct Snapshot {
    /// Store key.
    pub name: String,
    /// The problem instance sessions run against.
    pub instance: TpmInstance,
    /// Frozen RR index over the full graph, sampled at load time. Spread
    /// estimates answer from this without resampling.
    pub rr: RrCollection,
}

impl Snapshot {
    /// Builds a snapshot from a request: loads/generates the graph, selects
    /// the target set, calibrates costs, samples and freezes the RR index.
    pub fn build(req: &SnapshotReq) -> Result<Snapshot, ApiError> {
        let graph = match &req.source {
            SnapshotSource::Preset { dataset, scale } => {
                let d = Dataset::parse(dataset).ok_or_else(|| {
                    ApiError::bad_request(format!(
                        "unknown preset '{dataset}' (expected nethept | epinions | dblp | livejournal)"
                    ))
                })?;
                if !(*scale > 0.0 && *scale <= 1.0) {
                    return Err(ApiError::bad_request("scale must be in (0, 1]"));
                }
                d.generate(*scale, req.seed)
            }
            SnapshotSource::File { path, default_prob } => {
                io::load_auto(path, *default_prob as f32)
                    .map_err(|e| ApiError::bad_request(format!("cannot load '{path}': {e}")))?
            }
        };
        let n = graph.num_nodes();
        if req.k == 0 || req.k >= n.max(1) {
            return Err(ApiError::bad_request(format!(
                "k = {} out of range for a {n}-node graph",
                req.k
            )));
        }
        let instance = calibrated_instance(
            graph,
            req.k,
            CostSplit::DegreeProportional,
            CalibrationConfig {
                lb_theta: req.rr_theta.clamp(1_000, 400_000),
                seed: req.seed,
                threads: req.threads,
                ..Default::default()
            },
        );
        let rr = generate_batch(
            &instance.graph(),
            req.rr_theta,
            req.seed.wrapping_add(0x5EED),
            req.threads,
        );
        Ok(Snapshot {
            name: req.name.clone(),
            instance,
            rr,
        })
    }

    /// Approximate resident bytes this snapshot pins: the CSR graph at
    /// ~12 bytes/edge (u32 head + f32 probability + amortized offsets)
    /// plus per-node offset arrays, plus the frozen RR index. This is what
    /// the store's LRU budget charges.
    pub fn mem_bytes(&self) -> usize {
        let graph = self.instance.graph();
        12 * graph.num_edges() + 8 * (graph.num_nodes() + 1) + self.rr.mem_bytes()
    }

    /// Store/info wire form.
    pub fn info_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("nodes", Json::Num(self.instance.graph().num_nodes() as f64)),
            ("edges", Json::Num(self.instance.graph().num_edges() as f64)),
            ("targets", Json::Num(self.instance.k() as f64)),
            ("total_cost", Json::Num(self.instance.total_cost())),
            ("rr_sets", Json::Num(self.rr.len() as f64)),
            ("mem_bytes", Json::Num(self.mem_bytes() as f64)),
        ])
    }

    /// Warm-start spread estimate of a seed set: `n · CovR(S)/θ` against the
    /// pre-frozen index, using the caller's reusable scratch (the server
    /// keeps one per worker thread, so steady-state queries allocate
    /// nothing).
    pub fn estimate_spread(
        &self,
        nodes: &[u32],
        scratch: &mut CoverageScratch,
    ) -> Result<f64, ApiError> {
        let n = self.instance.graph().num_nodes();
        if let Some(&bad) = nodes.iter().find(|&&u| u as usize >= n) {
            return Err(ApiError::bad_request(format!(
                "node {bad} out of range for a {n}-node graph"
            )));
        }
        Ok(self.rr.scale(self.rr.cov_set_with(nodes, scratch)))
    }
}

/// A stored snapshot plus its LRU stamp. The stamp is an atomic so `get`
/// (read lock only) can refresh recency without write contention.
struct StoreEntry {
    snap: Arc<Snapshot>,
    last_used: AtomicU64,
}

/// Named snapshots behind a `RwLock`: cheap concurrent lookup, exclusive
/// only for insert/remove — now with an optional LRU size budget.
///
/// Eviction policy: after each insert, while the summed
/// [`Snapshot::mem_bytes`] exceeds the budget, the least-recently-used
/// snapshot is dropped — except snapshots that are *pinned* (their `Arc`
/// is held outside the store: live sessions, in-flight estimates) and the
/// most recently used one, which is always kept so the working snapshot
/// cannot evict itself. The budget is therefore a soft cap: pinned + newest
/// stay resident regardless.
#[derive(Default)]
pub struct SnapshotStore {
    map: RwLock<HashMap<String, StoreEntry>>,
    /// LRU clock: bumped on every touch.
    use_counter: AtomicU64,
    /// Byte budget; 0 = unbounded.
    budget: AtomicUsize,
    /// Lifetime evictions (observability).
    evictions: AtomicU64,
}

impl SnapshotStore {
    /// An empty, unbounded store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the LRU byte budget (0 = unbounded) and enforces it
    /// immediately.
    pub fn set_budget(&self, bytes: usize) {
        self.budget.store(bytes, Ordering::SeqCst);
        let mut map = self.map.write().expect("snapshot store poisoned");
        self.enforce_budget(&mut map);
    }

    /// The current LRU byte budget (0 = unbounded).
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::SeqCst)
    }

    /// Snapshots evicted by the budget over the store's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::SeqCst)
    }

    /// Summed [`Snapshot::mem_bytes`] over the stored snapshots.
    pub fn total_mem_bytes(&self) -> usize {
        self.map
            .read()
            .expect("snapshot store poisoned")
            .values()
            .map(|e| e.snap.mem_bytes())
            .sum()
    }

    fn stamp(&self) -> u64 {
        self.use_counter.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Inserts (or replaces) a snapshot under its name, then enforces the
    /// budget. Sessions opened on a replaced snapshot keep their `Arc` and
    /// finish against the old data.
    pub fn insert(&self, snapshot: Snapshot) -> Arc<Snapshot> {
        let arc = Arc::new(snapshot);
        let mut map = self.map.write().expect("snapshot store poisoned");
        map.insert(
            arc.name.clone(),
            StoreEntry {
                snap: arc.clone(),
                last_used: AtomicU64::new(self.stamp()),
            },
        );
        self.enforce_budget(&mut map);
        arc
    }

    /// Looks up a snapshot by name, refreshing its LRU stamp.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        let map = self.map.read().expect("snapshot store poisoned");
        let entry = map.get(name)?;
        entry.last_used.store(self.stamp(), Ordering::SeqCst);
        Some(entry.snap.clone())
    }

    /// Removes a snapshot; returns whether it existed. Live sessions keep
    /// their `Arc`.
    pub fn remove(&self, name: &str) -> bool {
        self.map
            .write()
            .expect("snapshot store poisoned")
            .remove(name)
            .is_some()
    }

    /// Info for every stored snapshot, name-sorted, each including its
    /// `mem_bytes` — `GET /snapshots` is the memory dashboard.
    pub fn list_json(&self) -> Json {
        let map = self.map.read().expect("snapshot store poisoned");
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        Json::Arr(names.iter().map(|n| map[*n].snap.info_json()).collect())
    }

    /// Evicts LRU-first until within budget. Skips pinned snapshots
    /// (`Arc` held outside the store — live sessions never lose their
    /// graph) and the single most-recently-used entry.
    fn enforce_budget(&self, map: &mut HashMap<String, StoreEntry>) {
        let budget = self.budget.load(Ordering::SeqCst);
        if budget == 0 {
            return;
        }
        loop {
            let total: usize = map.values().map(|e| e.snap.mem_bytes()).sum();
            if total <= budget {
                return;
            }
            let newest = map
                .values()
                .map(|e| e.last_used.load(Ordering::SeqCst))
                .max()
                .unwrap_or(0);
            let victim = map
                .iter()
                .filter(|(_, e)| {
                    // Unpinned: the store's Arc is the only one.
                    Arc::strong_count(&e.snap) == 1 && e.last_used.load(Ordering::SeqCst) != newest
                })
                .min_by_key(|(_, e)| e.last_used.load(Ordering::SeqCst))
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    map.remove(&name);
                    self.evictions.fetch_add(1, Ordering::SeqCst);
                }
                None => return, // everything left is pinned or newest
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_req(name: &str) -> SnapshotReq {
        SnapshotReq {
            name: name.into(),
            source: SnapshotSource::Preset {
                dataset: "nethept".into(),
                scale: 0.02,
            },
            k: 5,
            rr_theta: 5_000,
            seed: 1,
            threads: 1,
        }
    }

    #[test]
    fn build_produces_frozen_index_and_targets() {
        let snap = Snapshot::build(&tiny_req("g")).unwrap();
        assert_eq!(snap.instance.k(), 5);
        assert_eq!(snap.rr.len(), 5_000);
        // Frozen index answers estimates immediately.
        let mut scratch = CoverageScratch::new();
        let t = snap.instance.target().to_vec();
        let spread = snap.estimate_spread(&t, &mut scratch).unwrap();
        assert!(spread >= 1.0, "IMM targets must reach someone: {spread}");
        assert!(spread <= snap.instance.graph().num_nodes() as f64);
    }

    #[test]
    fn build_is_deterministic() {
        let a = Snapshot::build(&tiny_req("a")).unwrap();
        let b = Snapshot::build(&tiny_req("b")).unwrap();
        assert_eq!(a.instance.target(), b.instance.target());
        assert_eq!(a.rr.len(), b.rr.len());
    }

    #[test]
    fn build_rejects_bad_requests() {
        let mut bad = tiny_req("x");
        bad.k = 0;
        assert!(Snapshot::build(&bad).is_err());
        let mut bad = tiny_req("x");
        bad.source = SnapshotSource::Preset {
            dataset: "nope".into(),
            scale: 0.02,
        };
        assert!(Snapshot::build(&bad).is_err());
        let mut bad = tiny_req("x");
        bad.source = SnapshotSource::File {
            path: "/definitely/not/here.bin".into(),
            default_prob: 0.1,
        };
        assert!(Snapshot::build(&bad).is_err());
    }

    #[test]
    fn store_insert_get_replace_remove() {
        let store = SnapshotStore::new();
        assert!(store.get("g").is_none());
        let first = store.insert(Snapshot::build(&tiny_req("g")).unwrap());
        let got = store.get("g").unwrap();
        assert!(Arc::ptr_eq(&first, &got));
        // Replacement: old Arc stays valid for live sessions.
        let second = store.insert(Snapshot::build(&tiny_req("g")).unwrap());
        assert!(!Arc::ptr_eq(&first, &store.get("g").unwrap()));
        assert!(Arc::ptr_eq(&second, &store.get("g").unwrap()));
        assert_eq!(first.instance.k(), 5);
        assert!(store.remove("g"));
        assert!(!store.remove("g"));
        assert_eq!(store.list_json(), Json::Arr(vec![]));
    }

    #[test]
    fn mem_bytes_scales_with_edges_and_rr_index() {
        let snap = Snapshot::build(&tiny_req("g")).unwrap();
        let mem = snap.mem_bytes();
        assert!(
            mem >= 12 * snap.instance.graph().num_edges() + snap.rr.mem_bytes(),
            "accounting must cover graph + index: {mem}"
        );
        assert_eq!(
            snap.info_json().get("mem_bytes").unwrap().as_u64(),
            Some(mem as u64)
        );
    }

    #[test]
    fn lru_budget_evicts_coldest_unpinned_snapshot() {
        let store = SnapshotStore::new();
        let a = store.insert(Snapshot::build(&tiny_req("a")).unwrap());
        let one = a.mem_bytes();
        drop(a); // unpin
        store.insert(Snapshot::build(&tiny_req("b")).unwrap());
        store.insert(Snapshot::build(&tiny_req("c")).unwrap());
        assert_eq!(store.total_mem_bytes(), 3 * one);

        // Touch "a" so "b" becomes the coldest, then squeeze to two.
        store.get("a").unwrap();
        store.set_budget(2 * one);
        assert!(store.get("b").is_none(), "LRU victim must be b");
        assert!(store.get("a").is_some() && store.get("c").is_some());
        assert_eq!(store.evictions(), 1);

        // Inserting over budget evicts again — now "a" or "c", whichever
        // is colder (c was touched last above).
        store.insert(Snapshot::build(&tiny_req("d")).unwrap());
        assert_eq!(store.total_mem_bytes(), 2 * one);
        assert!(store.get("a").is_none(), "a was coldest at insert time");
        assert_eq!(store.evictions(), 2);
    }

    #[test]
    fn pinned_snapshots_survive_any_budget() {
        let store = SnapshotStore::new();
        let pinned = store.insert(Snapshot::build(&tiny_req("pinned")).unwrap());
        store.insert(Snapshot::build(&tiny_req("loose")).unwrap());
        // Budget of one byte: everything evictable must go, but the pinned
        // Arc (a live session, in spirit) and the newest entry survive.
        store.set_budget(1);
        assert!(
            store.get("pinned").is_some(),
            "a session's snapshot must never be evicted from under it"
        );
        assert!(store.get("loose").is_some(), "newest entry is protected");
        // Unpinning and touching something else lets the budget reclaim it.
        drop(pinned);
        store.insert(Snapshot::build(&tiny_req("newest")).unwrap());
        assert!(store.get("pinned").is_none());
        assert_eq!(store.list_json().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn estimate_rejects_out_of_range_nodes() {
        let snap = Snapshot::build(&tiny_req("g")).unwrap();
        let mut scratch = CoverageScratch::new();
        assert!(snap.estimate_spread(&[u32::MAX], &mut scratch).is_err());
    }
}
