//! The snapshot store: named, refcounted graph snapshots with a pre-frozen
//! RR index.
//!
//! A [`Snapshot`] bundles everything a session needs to start instantly:
//! the immutable [`TpmInstance`] (graph + IMM-selected targets + calibrated
//! costs) and a frozen [`RrCollection`] sampled at load time. Sessions and
//! estimate queries share the snapshot through an `Arc`, so creating a
//! session is O(1) in graph size — the expensive work (graph generation or
//! file load, IMM target selection, cost calibration, RR sampling +
//! index freeze) happens exactly once per snapshot, and concurrent readers
//! never contend: the store's `RwLock` is only held to look up or swap the
//! `Arc`, never while a query runs.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use atpm_core::setup::{calibrated_instance, CalibrationConfig};
use atpm_core::{CostSplit, TpmInstance};
use atpm_graph::gen::Dataset;
use atpm_graph::io;
use atpm_ris::{generate_batch, CoverageScratch, RrCollection};

use crate::json::Json;
use crate::protocol::{ApiError, SnapshotReq, SnapshotSource};

/// A loaded snapshot: instance + warm RR index.
pub struct Snapshot {
    /// Store key.
    pub name: String,
    /// The problem instance sessions run against.
    pub instance: TpmInstance,
    /// Frozen RR index over the full graph, sampled at load time. Spread
    /// estimates answer from this without resampling.
    pub rr: RrCollection,
}

impl Snapshot {
    /// Builds a snapshot from a request: loads/generates the graph, selects
    /// the target set, calibrates costs, samples and freezes the RR index.
    pub fn build(req: &SnapshotReq) -> Result<Snapshot, ApiError> {
        let graph = match &req.source {
            SnapshotSource::Preset { dataset, scale } => {
                let d = Dataset::parse(dataset).ok_or_else(|| {
                    ApiError::bad_request(format!(
                        "unknown preset '{dataset}' (expected nethept | epinions | dblp | livejournal)"
                    ))
                })?;
                if !(*scale > 0.0 && *scale <= 1.0) {
                    return Err(ApiError::bad_request("scale must be in (0, 1]"));
                }
                d.generate(*scale, req.seed)
            }
            SnapshotSource::File { path, default_prob } => {
                io::load_auto(path, *default_prob as f32)
                    .map_err(|e| ApiError::bad_request(format!("cannot load '{path}': {e}")))?
            }
        };
        let n = graph.num_nodes();
        if req.k == 0 || req.k >= n.max(1) {
            return Err(ApiError::bad_request(format!(
                "k = {} out of range for a {n}-node graph",
                req.k
            )));
        }
        let instance = calibrated_instance(
            graph,
            req.k,
            CostSplit::DegreeProportional,
            CalibrationConfig {
                lb_theta: req.rr_theta.clamp(1_000, 400_000),
                seed: req.seed,
                threads: req.threads,
                ..Default::default()
            },
        );
        let rr = generate_batch(
            &instance.graph(),
            req.rr_theta,
            req.seed.wrapping_add(0x5EED),
            req.threads,
        );
        Ok(Snapshot {
            name: req.name.clone(),
            instance,
            rr,
        })
    }

    /// Store/info wire form.
    pub fn info_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("nodes", Json::Num(self.instance.graph().num_nodes() as f64)),
            ("edges", Json::Num(self.instance.graph().num_edges() as f64)),
            ("targets", Json::Num(self.instance.k() as f64)),
            ("total_cost", Json::Num(self.instance.total_cost())),
            ("rr_sets", Json::Num(self.rr.len() as f64)),
        ])
    }

    /// Warm-start spread estimate of a seed set: `n · CovR(S)/θ` against the
    /// pre-frozen index, using the caller's reusable scratch (the server
    /// keeps one per worker thread, so steady-state queries allocate
    /// nothing).
    pub fn estimate_spread(
        &self,
        nodes: &[u32],
        scratch: &mut CoverageScratch,
    ) -> Result<f64, ApiError> {
        let n = self.instance.graph().num_nodes();
        if let Some(&bad) = nodes.iter().find(|&&u| u as usize >= n) {
            return Err(ApiError::bad_request(format!(
                "node {bad} out of range for a {n}-node graph"
            )));
        }
        Ok(self.rr.scale(self.rr.cov_set_with(nodes, scratch)))
    }
}

/// Named snapshots behind a `RwLock`: cheap concurrent lookup, exclusive
/// only for insert/remove.
#[derive(Default)]
pub struct SnapshotStore {
    map: RwLock<HashMap<String, Arc<Snapshot>>>,
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a snapshot under its name. Sessions opened on a
    /// replaced snapshot keep their `Arc` and finish against the old data.
    pub fn insert(&self, snapshot: Snapshot) -> Arc<Snapshot> {
        let arc = Arc::new(snapshot);
        self.map
            .write()
            .expect("snapshot store poisoned")
            .insert(arc.name.clone(), arc.clone());
        arc
    }

    /// Looks up a snapshot by name.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.map
            .read()
            .expect("snapshot store poisoned")
            .get(name)
            .cloned()
    }

    /// Removes a snapshot; returns whether it existed. Live sessions keep
    /// their `Arc`.
    pub fn remove(&self, name: &str) -> bool {
        self.map
            .write()
            .expect("snapshot store poisoned")
            .remove(name)
            .is_some()
    }

    /// Info for every stored snapshot, name-sorted.
    pub fn list_json(&self) -> Json {
        let map = self.map.read().expect("snapshot store poisoned");
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        Json::Arr(names.iter().map(|n| map[*n].info_json()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_req(name: &str) -> SnapshotReq {
        SnapshotReq {
            name: name.into(),
            source: SnapshotSource::Preset {
                dataset: "nethept".into(),
                scale: 0.02,
            },
            k: 5,
            rr_theta: 5_000,
            seed: 1,
            threads: 1,
        }
    }

    #[test]
    fn build_produces_frozen_index_and_targets() {
        let snap = Snapshot::build(&tiny_req("g")).unwrap();
        assert_eq!(snap.instance.k(), 5);
        assert_eq!(snap.rr.len(), 5_000);
        // Frozen index answers estimates immediately.
        let mut scratch = CoverageScratch::new();
        let t = snap.instance.target().to_vec();
        let spread = snap.estimate_spread(&t, &mut scratch).unwrap();
        assert!(spread >= 1.0, "IMM targets must reach someone: {spread}");
        assert!(spread <= snap.instance.graph().num_nodes() as f64);
    }

    #[test]
    fn build_is_deterministic() {
        let a = Snapshot::build(&tiny_req("a")).unwrap();
        let b = Snapshot::build(&tiny_req("b")).unwrap();
        assert_eq!(a.instance.target(), b.instance.target());
        assert_eq!(a.rr.len(), b.rr.len());
    }

    #[test]
    fn build_rejects_bad_requests() {
        let mut bad = tiny_req("x");
        bad.k = 0;
        assert!(Snapshot::build(&bad).is_err());
        let mut bad = tiny_req("x");
        bad.source = SnapshotSource::Preset {
            dataset: "nope".into(),
            scale: 0.02,
        };
        assert!(Snapshot::build(&bad).is_err());
        let mut bad = tiny_req("x");
        bad.source = SnapshotSource::File {
            path: "/definitely/not/here.bin".into(),
            default_prob: 0.1,
        };
        assert!(Snapshot::build(&bad).is_err());
    }

    #[test]
    fn store_insert_get_replace_remove() {
        let store = SnapshotStore::new();
        assert!(store.get("g").is_none());
        let first = store.insert(Snapshot::build(&tiny_req("g")).unwrap());
        let got = store.get("g").unwrap();
        assert!(Arc::ptr_eq(&first, &got));
        // Replacement: old Arc stays valid for live sessions.
        let second = store.insert(Snapshot::build(&tiny_req("g")).unwrap());
        assert!(!Arc::ptr_eq(&first, &store.get("g").unwrap()));
        assert!(Arc::ptr_eq(&second, &store.get("g").unwrap()));
        assert_eq!(first.instance.k(), 5);
        assert!(store.remove("g"));
        assert!(!store.remove("g"));
        assert_eq!(store.list_json(), Json::Arr(vec![]));
    }

    #[test]
    fn estimate_rejects_out_of_range_nodes() {
        let snap = Snapshot::build(&tiny_req("g")).unwrap();
        let mut scratch = CoverageScratch::new();
        assert!(snap.estimate_spread(&[u32::MAX], &mut scratch).is_err());
    }
}
