//! Minimal JSON encode/decode — the exact subset the protocol needs,
//! dependency-free (matching the repo's no-crates.io shim approach).
//!
//! Numbers are `f64`; integers that fit `f64` exactly (node ids are `u32`,
//! counters stay far below 2⁵³ in practice) round-trip losslessly, and the
//! writer uses Rust's shortest-round-trip float formatting, so `f64` profit
//! values survive a network hop bit-for-bit — the serve protocol's
//! byte-identical ledger guarantee rests on this (pinned by tests).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Numbers come in two exact forms: [`Json::UInt`] for nonnegative integers
/// (full `u64` range — world seeds and RNG seeds are 64-bit, and `f64`
/// would silently round anything above 2⁵³), [`Json::Num`] for everything
/// else. The parser picks `UInt` for any undecorated nonnegative integer
/// literal that fits; the two compare equal when they denote the same
/// number.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-integer, negative, or oversized number.
    Num(f64),
    /// A nonnegative integer, kept exact.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so encoding order is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            // Mixed numeric forms: equal when they denote the same number.
            (Json::UInt(u), Json::Num(f)) | (Json::Num(f), Json::UInt(u)) => *f == *u as f64,
            _ => false,
        }
    }
}

impl Json {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (`UInt` above 2⁵³ rounds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a nonnegative integer. Exact for
    /// [`Json::UInt`] over the whole range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(x) => Some(*x),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of numbers from any integer-ish iterator.
    pub fn nums<T: Into<f64> + Copy, I: IntoIterator<Item = T>>(items: I) -> Json {
        Json::Arr(items.into_iter().map(|x| Json::Num(x.into())).collect())
    }

    /// Serializes to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` is Rust's shortest round-trip formatting.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Json::UInt(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser {
            bytes,
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Deepest accepted array/object nesting. Recursion past this would risk
/// the worker's stack (overflow aborts the process); no legitimate protocol
/// body nests anywhere near it.
const MAX_DEPTH: u32 = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Undecorated nonnegative integers stay exact (u64); everything
        // else — fractions, exponents, negatives, oversized — goes to f64.
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let cp =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("bad unicode escape"))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("short unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad unicode escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        Json::parse(&v.encode()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.5),
            Json::Num(1e-9),
            Json::Str("hello \"world\"\n\\ tab\t".into()),
            Json::Str("unicode: ∑ emoji: 🦀".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn f64_round_trips_bit_exact() {
        // The ledger-equivalence guarantee: any finite profit survives
        // encode→parse with identical bits.
        for &x in &[
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            #[allow(clippy::excessive_precision)]
            123456789.123456789,
            -0.0,
            2f64.powi(-1074),
            6.02214076e23,
        ] {
            let v = round_trip(&Json::Num(x));
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn u64_round_trips_exact_beyond_f64_range() {
        // World seeds are full u64; f64 would corrupt anything over 2^53.
        for &x in &[u64::MAX, u64::MAX / 3, (1u64 << 53) + 1, 0] {
            let v = round_trip(&Json::UInt(x));
            assert_eq!(v.as_u64(), Some(x), "{x}");
        }
        assert_eq!(
            Json::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        // Mixed numeric forms compare by value.
        assert_eq!(Json::UInt(42), Json::Num(42.0));
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::obj([
            ("seeds", Json::nums([1u32, 2, 3])),
            ("done", Json::Bool(false)),
            (
                "nested",
                Json::obj([("empty_arr", Json::Arr(vec![])), ("null", Json::Null)]),
            ),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v =
            Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"x\\u0041\\ud83e\\udd80y\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "xA🦀y");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "[1 2]",
            "\"bad \\u12",
            "\"bad escape \\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // A worker must answer 400, not abort the process, on a bomb body.
        let bomb = "[".repeat(1_000_000);
        assert!(Json::parse(&bomb).is_err());
        let bomb = "{\"a\":".repeat(500_000);
        assert!(Json::parse(&bomb).is_err());
        // Reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(50), "]".repeat(50));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessor_helpers() {
        let v = Json::parse("{\"n\": 42, \"s\": \"x\", \"b\": true}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
