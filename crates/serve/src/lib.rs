//! # atpm-serve
//!
//! The adaptive-seeding **service**: the paper's serve-observe-update loop
//! (§II-B) exposed as a concurrent HTTP/1.1 API, std-only — no crates.io
//! dependencies, matching the repo's offline-shim discipline.
//!
//! The paper's adaptive policies are an online protocol: commit a seed,
//! watch the realized cascade, recurse on the residual graph. In-process
//! that loop is [`atpm_core::AdaptiveSession`] + a policy's `run`; here the
//! same loop is driven one request at a time by remote clients, with the
//! observation step inverted (the world reports activations to the server
//! instead of the server simulating them — though it can do that too, for
//! closed-loop benchmarking). Three layers:
//!
//! * [`snapshot`] — named, `Arc`-refcounted graph snapshots loaded from
//!   presets or `ATPMGRF1`/edge-list files, each carrying a pre-frozen RR
//!   index so spread queries warm-start instead of resampling;
//! * [`manager`] — concurrent adaptive sessions keyed by token, each a
//!   [`atpm_core::PolicyStepper`] + suspended [`atpm_core::SessionState`]
//!   over a shared snapshot. The stepped drive is byte-identical to the
//!   in-process run (pinned end-to-end by `tests/e2e_equivalence.rs`).
//!   With a [`journal`] attached, every committed transition is appended
//!   to an `ATPMJNL1` checksummed log and replayed on restart, so a crash
//!   loses at most the record being written;
//! * [`server`] — two transport backends behind one [`server::Server`]:
//!   the default **epoll** backend (reactor shards from `atpm-net`
//!   multiplexing any number of keep-alive connections over a small worker
//!   pool) and the original fixed accept **pool** (one blocking worker per
//!   connection, kept as the differential oracle). Both share the same
//!   router, the same per-worker reusable [`atpm_ris::CoverageScratch`],
//!   and the same [`http`] parser and [`json`] codec underneath, so their
//!   wire behavior is identical — including `GET /metrics`, the Prometheus
//!   text exposition of the server's [`metrics`] registry (latency
//!   histograms, overload/lifecycle counters, journal timings) merged with
//!   the process-global registry (RIS/MC stage timers from `atpm-obs`).
//!
//! [`client`] provides the in-process [`client::LocalClient`] (no sockets)
//! and the socket [`client::HttpClient`] behind one [`client::ProtocolClient`]
//! trait; the `atpm-loadgen` binary in `atpm-bench` uses the latter to
//! measure throughput/latency (`BENCH_serve.json`).
//!
//! ## Quick start
//!
//! ```
//! use atpm_serve::client::{LocalClient, ProtocolClient};
//! use atpm_serve::protocol::{CreateSessionReq, PolicySpec, SnapshotReq, SnapshotSource};
//! use atpm_serve::server::AppState;
//!
//! let mut client = LocalClient::new(AppState::new());
//! client
//!     .create_snapshot(&SnapshotReq {
//!         name: "demo".into(),
//!         source: SnapshotSource::Preset { dataset: "nethept".into(), scale: 0.01 },
//!         k: 3,
//!         rr_theta: 2_000,
//!         seed: 1,
//!         threads: 1,
//!     })
//!     .unwrap();
//! let ledger = client
//!     .run_session(&CreateSessionReq {
//!         snapshot: "demo".into(),
//!         policy: PolicySpec::DeployAll,
//!         world_seed: 7,
//!     })
//!     .unwrap();
//! assert!(ledger.done);
//! ```

pub mod client;
mod epoll;
pub mod http;
pub mod journal;
pub mod json;
pub mod manager;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod snapshot;

pub use client::{HttpClient, LocalClient, ProtocolClient};
pub use json::Json;
pub use manager::SessionManager;
pub use metrics::ServeMetrics;
pub use protocol::{ApiError, CreateSessionReq, Ledger, ObserveReq, PolicySpec, SnapshotReq};
pub use server::{AppState, Backend, ServeConfig, Server};
pub use snapshot::{Snapshot, SnapshotStore};
