//! The concurrent session manager: adaptive sessions keyed by token.
//!
//! Each session pairs a [`PolicyStepper`] with a suspended
//! [`SessionState`]; the serve-observe-update loop of the paper's adaptive
//! protocol (§II-B) is driven one request at a time:
//!
//! 1. `next` — resume the session, let the policy commit its next seed,
//!    suspend again. The seed is now *pending*: the residual graph is not
//!    touched until its cascade is observed.
//! 2. `observe` — apply the realized activations (client-reported, or
//!    server-simulated against the session's possible world) and clear the
//!    pending seed.
//! 3. `ledger` — read the profit ledger at any time.
//!
//! Concurrency: the table itself is a `Mutex<HashMap>` held only for
//! lookup/insert; each session sits behind its own `Arc<Mutex<_>>`, so
//! requests for different sessions proceed in parallel and requests for the
//! same session serialize (the protocol is inherently sequential per
//! session). Out-of-order calls (`next` with an observation outstanding,
//! `observe` with nothing pending or the wrong seed) are rejected with 409
//! rather than corrupting the run — the serve protocol stays byte-identical
//! to the in-process [`run_stepper`](atpm_core::run_stepper) drive.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use atpm_core::{AdaptiveSession, PolicyStepper, SessionState};
use atpm_graph::Node;

use crate::protocol::{ApiError, CreateSessionReq, Ledger, ObserveReq};
use crate::snapshot::{Snapshot, SnapshotStore};

/// One hosted session.
struct SessionEntry {
    snapshot: Arc<Snapshot>,
    stepper: Box<dyn PolicyStepper>,
    /// Suspended between requests; `Some` except transiently inside a
    /// request handler.
    state: Option<SessionState>,
    /// Seed committed by `next` and not yet observed.
    pending: Option<Node>,
    /// Policy exhausted (stepper returned `None`).
    done: bool,
}

/// The error a session answers with after a handler panic tore its state:
/// the run cannot be continued consistently, only discarded.
fn corrupted() -> ApiError {
    ApiError::new(
        500,
        "session state lost by an earlier panic; DELETE it and open a new one",
    )
}

impl SessionEntry {
    /// Runs `f` on the resumed session, suspending the result back. If `f`
    /// panics, the state stays `None` and the panic propagates (the server
    /// catches it at the request boundary); later calls get a clean 500
    /// from [`corrupted`] instead of a cascading panic.
    fn with_session<T>(
        &mut self,
        f: impl FnOnce(&mut Box<dyn PolicyStepper>, &mut AdaptiveSession<'_>) -> T,
    ) -> Result<T, ApiError> {
        let state = self.state.take().ok_or_else(corrupted)?;
        let snapshot = self.snapshot.clone();
        let mut session = AdaptiveSession::resume(&snapshot.instance, state);
        let out = f(&mut self.stepper, &mut session);
        self.state = Some(session.suspend());
        Ok(out)
    }

    fn ledger(&self) -> Result<Ledger, ApiError> {
        let state = self.state.as_ref().ok_or_else(corrupted)?;
        Ok(Ledger {
            algorithm: self.stepper.name().into_owned(),
            selected: state.selected().to_vec(),
            profit: state.profit(&self.snapshot.instance),
            total_activated: state.total_activated(),
            num_alive: state.num_alive(),
            sampling_work: state.sampling_work(),
            done: self.done,
        })
    }
}

/// Response of `next`: the committed seed batch (empty when done).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NextBatch {
    /// Seeds awaiting observation (the double-greedy family commits one at
    /// a time, so this is 0 or 1 seeds; the field is a batch so richer
    /// policies can extend the protocol without changing the wire format).
    pub seeds: Vec<Node>,
    /// Whether the policy has finished.
    pub done: bool,
}

/// Response of `observe`.
#[derive(Debug, Clone, PartialEq)]
pub struct Observed {
    /// The activation set that was applied (as reported, or as simulated).
    pub activated: Vec<Node>,
    /// How many of those were newly activated.
    pub newly_activated: usize,
    /// Ledger after applying the observation.
    pub ledger: Ledger,
}

/// Concurrent session table over a snapshot store.
pub struct SessionManager {
    store: Arc<SnapshotStore>,
    sessions: Mutex<HashMap<String, Arc<Mutex<SessionEntry>>>>,
    next_id: AtomicU64,
}

impl SessionManager {
    /// A manager over `store`.
    pub fn new(store: Arc<SnapshotStore>) -> Self {
        SessionManager {
            store,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The snapshot store sessions draw from.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens a session; returns `(token, algorithm name, k)`.
    pub fn create(&self, req: &CreateSessionReq) -> Result<(String, String, usize), ApiError> {
        let snapshot = self
            .store
            .get(&req.snapshot)
            .ok_or_else(|| ApiError::not_found("snapshot", &req.snapshot))?;
        let stepper = req.policy.build()?;
        let algorithm = stepper.name().into_owned();
        let k = snapshot.instance.k();
        let state = AdaptiveSession::new(&snapshot.instance, req.world_seed).suspend();
        let token = format!(
            "s{:08x}",
            splitmix64(self.next_id.fetch_add(1, Ordering::Relaxed))
        );
        let entry = SessionEntry {
            snapshot,
            stepper,
            state: Some(state),
            pending: None,
            done: false,
        };
        self.sessions
            .lock()
            .expect("session table poisoned")
            .insert(token.clone(), Arc::new(Mutex::new(entry)));
        Ok((token, algorithm, k))
    }

    fn entry(&self, token: &str) -> Result<Arc<Mutex<SessionEntry>>, ApiError> {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .get(token)
            .cloned()
            .ok_or_else(|| ApiError::not_found("session", token))
    }

    /// Advances the policy to its next committed seed.
    pub fn next(&self, token: &str) -> Result<NextBatch, ApiError> {
        let entry = self.entry(token)?;
        let mut entry = lock_entry(&entry);
        if let Some(u) = entry.pending {
            return Err(ApiError::new(
                409,
                format!("seed {u} awaits observation; POST observe first"),
            ));
        }
        if entry.done {
            return Ok(NextBatch {
                seeds: Vec::new(),
                done: true,
            });
        }
        let decided = entry.with_session(|stepper, session| stepper.next_seed(session))?;
        match decided {
            Some(u) => {
                entry.pending = Some(u);
                Ok(NextBatch {
                    seeds: vec![u],
                    done: false,
                })
            }
            None => {
                entry.done = true;
                Ok(NextBatch {
                    seeds: Vec::new(),
                    done: true,
                })
            }
        }
    }

    /// Applies an observation for the pending seed.
    pub fn observe(&self, token: &str, req: &ObserveReq) -> Result<Observed, ApiError> {
        let entry = self.entry(token)?;
        let mut entry = entry.lock().expect("session poisoned");
        let pending = entry
            .pending
            .ok_or_else(|| ApiError::new(409, "no seed awaiting observation; POST next first"))?;
        if req.seed() != pending {
            return Err(ApiError::new(
                409,
                format!(
                    "observation is for seed {}, but seed {pending} is pending",
                    req.seed()
                ),
            ));
        }
        let n = entry.snapshot.instance.graph().num_nodes();
        let (activated, newly_activated) = match req {
            ObserveReq::Simulate { seed } => {
                let cascade = entry.with_session(|_, session| session.select(*seed))?;
                let newly = cascade.len();
                (cascade, newly)
            }
            ObserveReq::Report { seed, activated } => {
                if let Some(&bad) = activated.iter().find(|&&v| v as usize >= n) {
                    return Err(ApiError::bad_request(format!(
                        "activated node {bad} out of range for a {n}-node graph"
                    )));
                }
                // Under the IC model a committed seed always activates
                // itself (it was alive when the stepper proposed it); a
                // report omitting it would leave the ledger paying for a
                // seed the residual graph still considers inactive.
                if !activated.contains(seed) {
                    return Err(ApiError::bad_request(format!(
                        "activated must include the seed {seed} itself"
                    )));
                }
                let seed = *seed;
                let reported = activated.clone();
                let newly = entry
                    .with_session(move |_, session| session.apply_observation(seed, &reported))?;
                (activated.clone(), newly)
            }
        };
        entry.pending = None;
        let ledger = entry.ledger()?;
        Ok(Observed {
            newly_activated,
            activated,
            ledger,
        })
    }

    /// The session's current profit ledger.
    pub fn ledger(&self, token: &str) -> Result<Ledger, ApiError> {
        let entry = self.entry(token)?;
        let entry = lock_entry(&entry);
        entry.ledger()
    }

    /// Closes a session; returns whether it existed.
    pub fn delete(&self, token: &str) -> bool {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .remove(token)
            .is_some()
    }
}

/// Locks a session entry, recovering from poison: a panic inside an earlier
/// request must quarantine that session (handled via the taken-state check),
/// not wedge every later request on the same entry.
fn lock_entry(entry: &Arc<Mutex<SessionEntry>>) -> std::sync::MutexGuard<'_, SessionEntry> {
    entry.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// SplitMix64 — scrambles the sequential counter into opaque-looking tokens.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{PolicySpec, SnapshotReq, SnapshotSource};

    fn manager() -> SessionManager {
        let store = Arc::new(SnapshotStore::new());
        store.insert(
            Snapshot::build(&SnapshotReq {
                name: "g".into(),
                source: SnapshotSource::Preset {
                    dataset: "nethept".into(),
                    scale: 0.02,
                },
                k: 5,
                rr_theta: 5_000,
                seed: 1,
                threads: 1,
            })
            .unwrap(),
        );
        SessionManager::new(store)
    }

    fn create(m: &SessionManager, policy: PolicySpec, world: u64) -> String {
        m.create(&CreateSessionReq {
            snapshot: "g".into(),
            policy,
            world_seed: world,
        })
        .unwrap()
        .0
    }

    #[test]
    fn full_deploy_all_run_through_the_protocol() {
        let m = manager();
        let token = create(&m, PolicySpec::DeployAll, 7);
        let mut selected = Vec::new();
        loop {
            let batch = m.next(&token).unwrap();
            if batch.done {
                break;
            }
            let seed = batch.seeds[0];
            let obs = m.observe(&token, &ObserveReq::Simulate { seed }).unwrap();
            assert!(obs.activated.contains(&seed));
            selected.push(seed);
        }
        let ledger = m.ledger(&token).unwrap();
        assert!(ledger.done);
        assert_eq!(ledger.selected, selected);
        assert_eq!(ledger.algorithm, "DeployAll");
        assert!(!selected.is_empty());
        assert!(m.delete(&token));
        assert!(!m.delete(&token));
        assert!(m.ledger(&token).is_err());
    }

    #[test]
    fn out_of_order_calls_conflict() {
        let m = manager();
        let token = create(&m, PolicySpec::DeployAll, 7);
        // observe before any next: 409.
        let err = m
            .observe(&token, &ObserveReq::Simulate { seed: 0 })
            .unwrap_err();
        assert_eq!(err.status, 409);
        let batch = m.next(&token).unwrap();
        let seed = batch.seeds[0];
        // next again without observing: 409.
        assert_eq!(m.next(&token).unwrap_err().status, 409);
        // observing the wrong seed: 409.
        let err = m
            .observe(&token, &ObserveReq::Simulate { seed: seed + 1 })
            .unwrap_err();
        assert_eq!(err.status, 409);
        // correct observation unblocks.
        m.observe(&token, &ObserveReq::Simulate { seed }).unwrap();
        assert!(m.next(&token).is_ok());
    }

    #[test]
    fn report_mode_validates_and_applies_external_activations() {
        let m = manager();
        let token = create(&m, PolicySpec::DeployAll, 7);
        let seed = m.next(&token).unwrap().seeds[0];
        let err = m
            .observe(
                &token,
                &ObserveReq::Report {
                    seed,
                    activated: vec![u32::MAX],
                },
            )
            .unwrap_err();
        assert_eq!(err.status, 400);
        // A report omitting the seed itself is inconsistent under IC: 400.
        let err = m
            .observe(
                &token,
                &ObserveReq::Report {
                    seed,
                    activated: vec![],
                },
            )
            .unwrap_err();
        assert_eq!(err.status, 400);
        let obs = m
            .observe(
                &token,
                &ObserveReq::Report {
                    seed,
                    activated: vec![seed],
                },
            )
            .unwrap();
        assert_eq!(obs.ledger.total_activated, 1);
        assert_eq!(obs.ledger.selected, vec![seed]);
    }

    #[test]
    fn unknown_tokens_and_snapshots_are_404() {
        let m = manager();
        assert_eq!(m.next("nope").unwrap_err().status, 404);
        let err = m
            .create(&CreateSessionReq {
                snapshot: "missing".into(),
                policy: PolicySpec::DeployAll,
                world_seed: 0,
            })
            .unwrap_err();
        assert_eq!(err.status, 404);
    }

    #[test]
    fn sessions_progress_independently() {
        let m = manager();
        let a = create(&m, PolicySpec::DeployAll, 1);
        let b = create(&m, PolicySpec::Ars { prob: 1.0, seed: 0 }, 1);
        assert_eq!(m.len(), 2);
        let sa = m.next(&a).unwrap().seeds[0];
        let sb = m.next(&b).unwrap().seeds[0];
        // Same snapshot, same world, both policies take the first target.
        assert_eq!(sa, sb);
        m.observe(&a, &ObserveReq::Simulate { seed: sa }).unwrap();
        // b still pending; a can continue.
        assert!(m.next(&a).is_ok());
        assert_eq!(m.next(&b).unwrap_err().status, 409);
        m.observe(&b, &ObserveReq::Simulate { seed: sb }).unwrap();
        assert!(m.next(&b).is_ok());
    }

    #[test]
    fn tokens_are_unique() {
        let m = manager();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            assert!(seen.insert(create(&m, PolicySpec::DeployAll, 0)));
        }
    }
}
