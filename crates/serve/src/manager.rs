//! The concurrent session manager: adaptive sessions keyed by token.
//!
//! Each session pairs a [`PolicyStepper`] with a suspended
//! [`SessionState`]; the serve-observe-update loop of the paper's adaptive
//! protocol (§II-B) is driven one request at a time:
//!
//! 1. `next` — resume the session, let the policy commit its next seed,
//!    suspend again. The seed is now *pending*: the residual graph is not
//!    touched until its cascade is observed.
//! 2. `observe` — apply the realized activations (client-reported, or
//!    server-simulated against the session's possible world) and clear the
//!    pending seed.
//! 3. `ledger` — read the profit ledger at any time.
//!
//! The batch routes are the low-adaptivity form of the same loop:
//! `next_batch` commits up to `k` seeds decided against **one** residual
//! state, `observe_batch` applies their joint cascade as one adaptivity
//! round. A pending batch is re-served verbatim on retry (whatever `k`
//! the retry asks for), and mixing the single-seed verbs with a pending
//! multi-seed batch is a 409 — the generalization of the wrong-seed
//! conflict rule. At `k = 1` the batch routes are byte-identical to the
//! single-seed ones by the stepper contract.
//!
//! Concurrency: the table itself is a `Mutex<HashMap>` held only for
//! lookup/insert; each session sits behind its own `Arc<Mutex<_>>`, so
//! requests for different sessions proceed in parallel and requests for the
//! same session serialize (the protocol is inherently sequential per
//! session). `next` is **idempotent**: while a seed is pending, retrying
//! `next` returns that same seed again (a client that lost the response can
//! safely re-ask), and the residual graph is untouched until `observe`.
//! Genuinely conflicting calls (`observe` with nothing pending or for the
//! wrong seed) are rejected with 409 rather than corrupting the run — the
//! serve protocol stays byte-identical to the in-process
//! [`run_stepper`](atpm_core::run_stepper) drive.
//!
//! Durability: with [`attach_journal`](SessionManager::attach_journal), every
//! committed transition (create / new seed / observation / delete) is
//! appended to an [`ATPMJNL1` journal](crate::journal) — idempotent retries
//! are not re-journaled. [`recover`](SessionManager::recover) replays a
//! journal through these same handlers, rebuilding each session bit-for-bit
//! (same token, same seed sequence, same ledger).
//!
//! Expiry: every session records a last-touched timestamp from the
//! manager's clock (monotonic by default, injectable for tests), and
//! [`sweep_expired`](SessionManager::sweep_expired) evicts sessions idle
//! past a TTL — abandoned runs would otherwise pin their suspended
//! residual graph forever. Evicted tokens leave a bounded tombstone so
//! later requests get an honest `410 Gone` instead of a confusable 404.
//! The sweep is driven by the epoll backend's reactor tick (or a helper
//! thread under the pool backend); the manager itself never spawns.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use atpm_core::{AdaptiveSession, PolicyStepper, SessionState};
use atpm_graph::Node;

use crate::journal::{CkpSession, Journal, Record, RoundRec};
use crate::metrics::ServeMetrics;
use crate::protocol::{ApiError, CreateSessionReq, Ledger, ObserveBatchReq, ObserveReq};
use crate::snapshot::{Snapshot, SnapshotStore};

/// Millisecond clock the manager stamps sessions with. Injectable so the
/// expiry tests can advance time by fiat instead of sleeping.
pub type ClockMs = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Tombstones of evicted sessions, capped FIFO so an eviction storm cannot
/// grow the table it was meant to shrink.
#[derive(Default)]
struct Tombstones {
    set: std::collections::HashSet<String>,
    order: VecDeque<String>,
}

const MAX_TOMBSTONES: usize = 65_536;

impl Tombstones {
    fn insert(&mut self, token: String) {
        if self.set.insert(token.clone()) {
            self.order.push_back(token);
            while self.order.len() > MAX_TOMBSTONES {
                if let Some(old) = self.order.pop_front() {
                    self.set.remove(&old);
                }
            }
        }
    }
}

/// One hosted session.
struct SessionEntry {
    snapshot: Arc<Snapshot>,
    stepper: Box<dyn PolicyStepper>,
    /// Suspended between requests; `Some` except transiently inside a
    /// request handler.
    state: Option<SessionState>,
    /// Batch committed by `next`/`next_batch` and not yet observed
    /// (empty = nothing pending; the single-seed route pends a batch of
    /// one).
    pending: Vec<Node>,
    /// The `k` of the most recent stepper round — checkpointed so replay
    /// re-asks the pending (or final, policy-exhausting) round with the
    /// same request size.
    pending_k: usize,
    /// Policy exhausted (stepper returned an empty batch).
    done: bool,
    /// Manager-clock milliseconds of the last request that touched this
    /// session (any verb counts as a sign of life).
    last_touched_ms: u64,
    /// Counter value the token was minted from (checkpoints persist it so
    /// a reload can keep replay-checking against journaled creates).
    id: u64,
    /// The creating request — with `rounds`, the session's full
    /// replayable history for checkpoint serialization.
    req: CreateSessionReq,
    /// Every committed round, in order. The stepper itself (RNG,
    /// residual-graph cursors) cannot be serialized; replaying this
    /// history through the live handlers rebuilds it bit-for-bit.
    rounds: Vec<RoundRec>,
    /// Highest journal seq reflected in this state; a checkpoint captures
    /// it so tail replay skips records already folded in.
    last_seq: u64,
}

/// The 503 a mutating request answers with when the journal is poisoned:
/// the transition may not survive a crash, so it is refused rather than
/// acked undurably. Read routes keep serving.
fn degraded_error(e: io::Error) -> ApiError {
    ApiError::new(
        503,
        format!("journal degraded; durability lost ({e}); mutations disabled"),
    )
}

/// The error a session answers with after a handler panic tore its state:
/// the run cannot be continued consistently, only discarded.
fn corrupted() -> ApiError {
    ApiError::new(
        500,
        "session state lost by an earlier panic; DELETE it and open a new one",
    )
}

impl SessionEntry {
    /// Runs `f` on the resumed session, suspending the result back. If `f`
    /// panics, the state stays `None` and the panic propagates (the server
    /// catches it at the request boundary); later calls get a clean 500
    /// from [`corrupted`] instead of a cascading panic.
    fn with_session<T>(
        &mut self,
        f: impl FnOnce(&mut Box<dyn PolicyStepper>, &mut AdaptiveSession<'_>) -> T,
    ) -> Result<T, ApiError> {
        let state = self.state.take().ok_or_else(corrupted)?;
        let snapshot = self.snapshot.clone();
        let mut session = AdaptiveSession::resume(&snapshot.instance, state);
        let out = f(&mut self.stepper, &mut session);
        self.state = Some(session.suspend());
        Ok(out)
    }

    fn ledger(&self) -> Result<Ledger, ApiError> {
        let state = self.state.as_ref().ok_or_else(corrupted)?;
        Ok(Ledger {
            algorithm: self.stepper.name().into_owned(),
            selected: state.selected().to_vec(),
            profit: state.profit(&self.snapshot.instance),
            total_activated: state.total_activated(),
            num_alive: state.num_alive(),
            sampling_work: state.sampling_work(),
            rounds: state.rounds(),
            oracle_queries: state.oracle_queries(),
            done: self.done,
        })
    }
}

/// Response of `next`/`next_batch`: the committed seed batch (empty when
/// done).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NextBatch {
    /// Seeds awaiting observation. The single-seed route commits 0 or 1;
    /// `next_batch` commits up to the requested `k`, all decided against
    /// one residual state.
    pub seeds: Vec<Node>,
    /// Whether the policy has finished.
    pub done: bool,
}

/// Response of `observe`.
#[derive(Debug, Clone, PartialEq)]
pub struct Observed {
    /// The activation set that was applied (as reported, or as simulated).
    pub activated: Vec<Node>,
    /// How many of those were newly activated.
    pub newly_activated: usize,
    /// Ledger after applying the observation.
    pub ledger: Ledger,
}

/// Concurrent session table over a snapshot store.
pub struct SessionManager {
    store: Arc<SnapshotStore>,
    sessions: Mutex<HashMap<String, Arc<Mutex<SessionEntry>>>>,
    next_id: AtomicU64,
    clock: ClockMs,
    expired: Mutex<Tombstones>,
    /// Committed-transition journal, when durability is configured.
    journal: Mutex<Option<Arc<Journal>>>,
    /// Raised during [`recover`](Self::recover) so replayed transitions are
    /// not appended back to the journal they came from.
    replaying: AtomicBool,
    /// Serializes [`checkpoint`](Self::checkpoint) calls (the periodic
    /// thread vs. an operator-triggered one must not interleave rotations).
    checkpointing: Mutex<()>,
    /// Lifecycle counters + journal timings, when the owning server bound
    /// them (a bare manager — unit tests, LocalClient — runs uncounted).
    metrics: OnceLock<Arc<ServeMetrics>>,
}

/// Journal health as reported on `/healthz`. A manager without a journal
/// reports the inert defaults, so the pool/epoll differential oracle stays
/// byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalStats {
    /// Active segment size in bytes.
    pub bytes: u64,
    /// Segment files on disk (active + sealed).
    pub segments: u64,
    /// High-water seq of the last durable checkpoint (0 when none).
    pub last_checkpoint_seq: u64,
    /// The configured fsync policy (`"none"` without a journal).
    pub policy: String,
    /// True once a durability failure poisoned the journal.
    pub degraded: bool,
}

impl SessionManager {
    /// A manager over `store`, stamping sessions with a monotonic clock
    /// anchored at construction.
    pub fn new(store: Arc<SnapshotStore>) -> Self {
        let t0 = Instant::now();
        Self::with_clock(store, Arc::new(move || t0.elapsed().as_millis() as u64))
    }

    /// A manager with an injected clock (expiry tests drive time by hand).
    pub fn with_clock(store: Arc<SnapshotStore>, clock: ClockMs) -> Self {
        SessionManager {
            store,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            clock,
            expired: Mutex::new(Tombstones::default()),
            journal: Mutex::new(None),
            replaying: AtomicBool::new(false),
            checkpointing: Mutex::new(()),
            metrics: OnceLock::new(),
        }
    }

    /// Binds the server's metrics so session lifecycle events and journal
    /// I/O are counted. First bind wins; later calls are ignored.
    pub fn bind_metrics(&self, metrics: Arc<ServeMetrics>) {
        let _ = self.metrics.set(metrics);
    }

    /// Attaches a journal: every committed transition from here on is
    /// appended to it. Call before serving traffic (typically right after
    /// [`recover`](Self::recover)ing the same journal's records).
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        *self.journal.lock().unwrap_or_else(|p| p.into_inner()) = Some(journal);
    }

    /// The attached journal, if any.
    fn journal(&self) -> Option<Arc<Journal>> {
        self.journal
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Fsyncs the attached journal, if any — the graceful-shutdown
    /// durability barrier. An error here means the tail of the run may
    /// not have reached the disk; the caller must surface it (the server
    /// binary exits nonzero so supervisors notice lost durability).
    pub fn sync_journal(&self) -> io::Result<()> {
        let Some(journal) = self.journal() else {
            return Ok(());
        };
        let t0 = Instant::now();
        let result = journal.sync();
        if let Some(m) = self.metrics.get() {
            m.journal_fsync_seconds.record_duration(t0.elapsed());
        }
        result
    }

    /// Journal health for `/healthz` (inert defaults without a journal).
    pub fn journal_stats(&self) -> JournalStats {
        match self.journal() {
            Some(journal) => JournalStats {
                bytes: journal.bytes(),
                segments: journal.segments(),
                last_checkpoint_seq: journal.last_checkpoint_seq(),
                policy: journal.policy().render(),
                degraded: journal.poisoned(),
            },
            None => JournalStats {
                bytes: 0,
                segments: 0,
                last_checkpoint_seq: 0,
                policy: "none".into(),
                degraded: false,
            },
        }
    }

    /// True once the attached journal is poisoned: durability is lost,
    /// so mutating routes must stop acking (degraded mode).
    pub fn journal_degraded(&self) -> bool {
        self.journal().is_some_and(|journal| journal.poisoned())
    }

    /// Advances the session-id counter to at least `floor` (the
    /// checkpoint head's watermark — recovered-then-deleted sessions must
    /// never recycle a token).
    pub fn bump_next_id(&self, floor: u64) {
        self.next_id.fetch_max(floor, Ordering::Relaxed);
    }

    /// Appends a record to the attached journal and blocks until it is
    /// durable under the configured fsync policy, returning its commit
    /// seq (0 when no journal is attached or while replaying). A
    /// durability failure poisons the journal and surfaces as a 503 —
    /// fsyncgate semantics: never ack a transition the disk may not hold.
    /// `make` runs only when a journal is attached and not replaying, so
    /// the hot path never clones request payloads.
    fn log(&self, make: impl FnOnce() -> Record) -> Result<u64, ApiError> {
        if self.replaying.load(Ordering::SeqCst) {
            return Ok(0);
        }
        let Some(journal) = self.journal() else {
            return Ok(0);
        };
        let t0 = Instant::now();
        let seq = journal.append(&make()).map_err(degraded_error)?;
        if let Some(m) = self.metrics.get() {
            m.journal_append_seconds.record_duration(t0.elapsed());
        }
        journal.commit(seq).map_err(degraded_error)?;
        Ok(seq)
    }

    /// Rotates the journal and writes an `ATPMCKP1` checkpoint of every
    /// live session, then retires the sealed segments. Returns the number
    /// of sessions checkpointed (0 without a journal). Recovery becomes
    /// load-checkpoint + replay-tail: bounded, regardless of run length.
    pub fn checkpoint(&self) -> io::Result<usize> {
        let Some(journal) = self.journal() else {
            return Ok(0);
        };
        let _serial = self.checkpointing.lock().unwrap_or_else(|p| p.into_inner());
        // Drop guard, not a manual record at the end: a failed rotate or
        // checkpoint write still counts — slow failures matter as much as
        // slow successes.
        let _timer = self
            .metrics
            .get()
            .map(|m| m.journal_checkpoint_seconds.start_timer());
        // Rotate first: from here on, every new append lands in the fresh
        // segment, so a record is either (a) sealed and therefore folded
        // into the state serialized below, or (b) in the surviving active
        // segment. The per-session `last_seq` disambiguates the overlap.
        journal.rotate()?;
        let entries: Vec<(String, Arc<Mutex<SessionEntry>>)> = {
            let table = self.sessions.lock().expect("session table poisoned");
            table
                .iter()
                .map(|(token, entry)| (token.clone(), entry.clone()))
                .collect()
        };
        let mut sessions = Vec::with_capacity(entries.len());
        for (token, entry) in entries {
            let guard = lock_entry(&entry);
            // A panic-quarantined session (state taken) cannot be
            // serialized; it is discarded at the next restart, which is
            // strictly better than resurrecting a corrupt run.
            if guard.state.is_none() {
                continue;
            }
            sessions.push(CkpSession {
                token,
                id: guard.id,
                req: guard.req.clone(),
                rounds: guard.rounds.clone(),
                pending: guard.pending.clone(),
                pending_k: guard.pending_k,
                done: guard.done,
                last_seq: guard.last_seq,
            });
        }
        let next_id = self.next_id.load(Ordering::Relaxed);
        journal.write_checkpoint(next_id, &sessions)?;
        Ok(sessions.len())
    }

    /// Replays journal records through the live handlers, rebuilding every
    /// session that was open at the crash. Returns the number of sessions
    /// live afterwards.
    ///
    /// Sessions are deterministic given `(snapshot, policy, world seed,
    /// observations)`, so re-driving `next`/`observe` reproduces each
    /// session bit-for-bit; every replayed `next` is checked against the
    /// journaled batch, and a divergence (the named snapshot was rebuilt
    /// differently than the one the journal ran against) discards that
    /// session rather than resurrecting a corrupt run. Tombstones are not
    /// persisted: a session evicted before the crash answers 404 after
    /// recovery, not 410.
    pub fn recover(&self, records: &[Record]) -> usize {
        self.replaying.store(true, Ordering::SeqCst);
        for record in records {
            match record {
                Record::Create { id, token, req } => {
                    // New tokens must never collide with recovered ones.
                    self.next_id.fetch_max(id + 1, Ordering::Relaxed);
                    let _ = self.create_with_token(req, token, *id);
                }
                Record::Next { token, seeds, done } => match self.next(token) {
                    Ok(batch) if batch.seeds == *seeds && batch.done == *done => {}
                    _ => {
                        self.delete(token);
                    }
                },
                Record::Observe { token, req } => {
                    if self.observe(token, req).is_err() {
                        self.delete(token);
                    }
                }
                Record::NextBatch {
                    token,
                    seeds,
                    k,
                    done,
                } => match self.next_batch(token, *k) {
                    Ok(batch) if batch.seeds == *seeds && batch.done == *done => {}
                    _ => {
                        self.delete(token);
                    }
                },
                Record::ObserveBatch { token, req } => {
                    if self.observe_batch(token, req).is_err() {
                        self.delete(token);
                    }
                }
                Record::Delete { token } => {
                    self.delete(token);
                }
            }
        }
        self.replaying.store(false, Ordering::SeqCst);
        self.len()
    }

    /// The manager's current clock reading, milliseconds.
    pub fn now_ms(&self) -> u64 {
        (self.clock)()
    }

    /// The snapshot store sessions draw from.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Opens a session; returns `(token, algorithm name, k)`.
    ///
    /// Write-ahead ordering: the `Create` record is journaled (and made
    /// durable) while the entry's lock is held across the table insert,
    /// so a checkpoint can never serialize a session whose creation is
    /// only in a segment it is about to retire. A journal failure undoes
    /// the insert and answers 503 — no orphan state.
    pub fn create(&self, req: &CreateSessionReq) -> Result<(String, String, usize), ApiError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let token = format!("s{:08x}", splitmix64(id));
        let (entry, algorithm, k) = self.build_entry(req, id)?;
        let entry = Arc::new(Mutex::new(entry));
        let mut guard = lock_entry(&entry);
        self.sessions
            .lock()
            .expect("session table poisoned")
            .insert(token.clone(), entry.clone());
        match self.log(|| Record::Create {
            id,
            token: token.clone(),
            req: req.clone(),
        }) {
            Ok(seq) => guard.last_seq = seq,
            Err(e) => {
                self.sessions
                    .lock()
                    .expect("session table poisoned")
                    .remove(&token);
                return Err(e);
            }
        }
        drop(guard);
        // Counted here (not in build_entry) so journal recovery's
        // replayed creates don't inflate the API counter.
        if let Some(m) = self.metrics.get() {
            m.sessions_created.inc();
        }
        Ok((token, algorithm, k))
    }

    /// [`create`](Self::create) under a caller-chosen token and id —
    /// journal recovery, which must reuse the journaled ones.
    fn create_with_token(
        &self,
        req: &CreateSessionReq,
        token: &str,
        id: u64,
    ) -> Result<(String, String, usize), ApiError> {
        let (entry, algorithm, k) = self.build_entry(req, id)?;
        self.sessions
            .lock()
            .expect("session table poisoned")
            .insert(token.to_string(), Arc::new(Mutex::new(entry)));
        Ok((token.to_string(), algorithm, k))
    }

    /// Validates the request and builds a fresh (uninserted) entry.
    fn build_entry(
        &self,
        req: &CreateSessionReq,
        id: u64,
    ) -> Result<(SessionEntry, String, usize), ApiError> {
        let snapshot = self
            .store
            .get(&req.snapshot)
            .ok_or_else(|| ApiError::not_found("snapshot", &req.snapshot))?;
        let stepper = req.policy.build()?;
        let algorithm = stepper.name().into_owned();
        let k = snapshot.instance.k();
        let state = AdaptiveSession::new(&snapshot.instance, req.world_seed).suspend();
        let entry = SessionEntry {
            snapshot,
            stepper,
            state: Some(state),
            pending: Vec::new(),
            pending_k: 1,
            done: false,
            last_touched_ms: self.now_ms(),
            id,
            req: req.clone(),
            rounds: Vec::new(),
            last_seq: 0,
        };
        Ok((entry, algorithm, k))
    }

    fn entry(&self, token: &str) -> Result<Arc<Mutex<SessionEntry>>, ApiError> {
        if let Some(entry) = self
            .sessions
            .lock()
            .expect("session table poisoned")
            .get(token)
            .cloned()
        {
            return Ok(entry);
        }
        if self.was_expired(token) {
            return Err(ApiError::new(
                410,
                format!("session '{token}' expired and was evicted; open a new one"),
            ));
        }
        Err(ApiError::not_found("session", token))
    }

    /// Whether `token` was evicted by an expiry sweep (and not since
    /// superseded). Requests for such sessions answer `410 Gone`.
    pub fn was_expired(&self, token: &str) -> bool {
        self.expired
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .set
            .contains(token)
    }

    /// Evicts every session idle for at least `ttl_ms` manager-clock
    /// milliseconds. Sessions mid-request (their per-session lock held) are
    /// skipped — by definition they are being touched right now. Returns
    /// how many sessions were evicted.
    pub fn sweep_expired(&self, ttl_ms: u64) -> usize {
        let now = self.now_ms();
        let mut table = self.sessions.lock().expect("session table poisoned");
        let stale: Vec<String> = table
            .iter()
            .filter_map(|(token, entry)| {
                // A poisoned entry (earlier handler panic) is quarantined,
                // not in use — it must stay sweepable or it leaks forever.
                let guard = match entry.try_lock() {
                    Ok(guard) => guard,
                    Err(std::sync::TryLockError::Poisoned(poison)) => poison.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => return None,
                };
                (now.saturating_sub(guard.last_touched_ms) >= ttl_ms).then(|| token.clone())
            })
            .collect();
        if stale.is_empty() {
            return 0;
        }
        let mut tombstones = self.expired.lock().unwrap_or_else(|p| p.into_inner());
        for token in &stale {
            table.remove(token);
            tombstones.insert(token.clone());
        }
        drop(tombstones);
        drop(table);
        if let Some(m) = self.metrics.get() {
            m.sessions_expired.add(stale.len() as u64);
        }
        for token in &stale {
            // Best-effort: a degraded journal must not wedge the sweep;
            // the eviction already happened in memory, and an unlogged
            // Delete only resurrects a dead session at the next restart.
            let _ = self.log(|| Record::Delete {
                token: token.clone(),
            });
        }
        stale.len()
    }

    /// Advances the policy to its next committed seed (a batch round of
    /// `k = 1` — byte-identical to the pre-batch single-seed protocol by
    /// the stepper contract).
    pub fn next(&self, token: &str) -> Result<NextBatch, ApiError> {
        let entry = self.entry(token)?;
        let mut entry = lock_entry(&entry);
        entry.last_touched_ms = self.now_ms();
        match entry.pending.len() {
            0 => {}
            1 => {
                // Idempotent retry: a client whose response got lost
                // (crash, shed, dropped connection) re-asks and receives
                // the same committed seed — nothing advances, nothing
                // re-journals.
                return Ok(NextBatch {
                    seeds: entry.pending.clone(),
                    done: false,
                });
            }
            n => {
                // A multi-seed batch is pending: the single-seed route
                // cannot observe it, so handing out one seed of it would
                // wedge the session. Same conflict family as observing
                // the wrong seed.
                return Err(ApiError::new(
                    409,
                    format!("a batch of {n} seeds is pending; POST observe_batch first"),
                ));
            }
        }
        if entry.done {
            return Ok(NextBatch {
                seeds: Vec::new(),
                done: true,
            });
        }
        // `next_batch(session, 1)` is exactly one `next_seed` call.
        let seeds = entry.with_session(|stepper, session| stepper.next_batch(session, 1))?;
        let done = seeds.is_empty();
        entry.pending = seeds.clone();
        entry.pending_k = 1;
        entry.done = done;
        let seq = self.log(|| Record::Next {
            token: token.to_string(),
            seeds: seeds.clone(),
            done,
        })?;
        entry.last_seq = entry.last_seq.max(seq);
        Ok(NextBatch { seeds, done })
    }

    /// Advances the policy by one low-adaptivity round: up to `k` seeds
    /// decided against the current residual state, all pending together
    /// until `observe_batch` reports their joint cascade.
    pub fn next_batch(&self, token: &str, k: usize) -> Result<NextBatch, ApiError> {
        if k == 0 {
            return Err(ApiError::bad_request("k must be positive"));
        }
        let entry = self.entry(token)?;
        let mut entry = lock_entry(&entry);
        entry.last_touched_ms = self.now_ms();
        if !entry.pending.is_empty() {
            // Idempotent retry: the already-committed batch is re-served
            // verbatim, whatever `k` the retry asks for — the round was
            // decided when it was first handed out.
            return Ok(NextBatch {
                seeds: entry.pending.clone(),
                done: false,
            });
        }
        if entry.done {
            return Ok(NextBatch {
                seeds: Vec::new(),
                done: true,
            });
        }
        let seeds = entry.with_session(|stepper, session| stepper.next_batch(session, k))?;
        let done = seeds.is_empty();
        entry.pending = seeds.clone();
        entry.pending_k = k;
        entry.done = done;
        let seq = self.log(|| Record::NextBatch {
            token: token.to_string(),
            seeds: seeds.clone(),
            k,
            done,
        })?;
        entry.last_seq = entry.last_seq.max(seq);
        Ok(NextBatch { seeds, done })
    }

    /// Applies an observation for the pending seed.
    pub fn observe(&self, token: &str, req: &ObserveReq) -> Result<Observed, ApiError> {
        let entry = self.entry(token)?;
        let mut entry = lock_entry(&entry);
        entry.last_touched_ms = self.now_ms();
        let pending = match entry.pending.len() {
            0 => {
                return Err(ApiError::new(
                    409,
                    "no seed awaiting observation; POST next first",
                ))
            }
            1 => entry.pending[0],
            n => {
                return Err(ApiError::new(
                    409,
                    format!("a batch of {n} seeds is pending; POST observe_batch instead"),
                ))
            }
        };
        if req.seed() != pending {
            return Err(ApiError::new(
                409,
                format!(
                    "observation is for seed {}, but seed {pending} is pending",
                    req.seed()
                ),
            ));
        }
        let n = entry.snapshot.instance.graph().num_nodes();
        let (activated, newly_activated) = match req {
            ObserveReq::Simulate { seed } => {
                let cascade = entry.with_session(|_, session| session.select(*seed))?;
                let newly = cascade.len();
                (cascade, newly)
            }
            ObserveReq::Report { seed, activated } => {
                if let Some(&bad) = activated.iter().find(|&&v| v as usize >= n) {
                    return Err(ApiError::bad_request(format!(
                        "activated node {bad} out of range for a {n}-node graph"
                    )));
                }
                // Under the IC model a committed seed always activates
                // itself (it was alive when the stepper proposed it); a
                // report omitting it would leave the ledger paying for a
                // seed the residual graph still considers inactive.
                if !activated.contains(seed) {
                    return Err(ApiError::bad_request(format!(
                        "activated must include the seed {seed} itself"
                    )));
                }
                let seed = *seed;
                let reported = activated.clone();
                let newly = entry
                    .with_session(move |_, session| session.apply_observation(seed, &reported))?;
                (activated.clone(), newly)
            }
        };
        entry.pending.clear();
        let round_k = entry.pending_k;
        entry.rounds.push(RoundRec {
            k: round_k,
            req: req.clone().into(),
        });
        let seq = self.log(|| Record::Observe {
            token: token.to_string(),
            req: req.clone(),
        })?;
        entry.last_seq = entry.last_seq.max(seq);
        let ledger = entry.ledger()?;
        Ok(Observed {
            newly_activated,
            activated,
            ledger,
        })
    }

    /// Applies a joint observation for the whole pending batch. The
    /// reported `seeds` must be exactly the pending batch (same seeds,
    /// same order) — the batch generalization of the single-seed 409
    /// rule.
    pub fn observe_batch(&self, token: &str, req: &ObserveBatchReq) -> Result<Observed, ApiError> {
        let entry = self.entry(token)?;
        let mut entry = lock_entry(&entry);
        entry.last_touched_ms = self.now_ms();
        if entry.pending.is_empty() {
            return Err(ApiError::new(
                409,
                "no batch awaiting observation; POST next_batch first",
            ));
        }
        if req.seeds() != &entry.pending[..] {
            return Err(ApiError::new(
                409,
                format!(
                    "observation is for seeds {:?}, but seeds {:?} are pending",
                    req.seeds(),
                    entry.pending
                ),
            ));
        }
        let n = entry.snapshot.instance.graph().num_nodes();
        let (activated, newly_activated) = match req {
            ObserveBatchReq::Simulate { seeds } => {
                let seeds = seeds.clone();
                let cascade = entry.with_session(move |_, session| session.select_batch(&seeds))?;
                let newly = cascade.len();
                (cascade, newly)
            }
            ObserveBatchReq::Report { seeds, activated } => {
                if let Some(&bad) = activated.iter().find(|&&v| v as usize >= n) {
                    return Err(ApiError::bad_request(format!(
                        "activated node {bad} out of range for a {n}-node graph"
                    )));
                }
                // Every seed of the batch activates itself under IC.
                if let Some(&seed) = req.seeds().iter().find(|s| !activated.contains(s)) {
                    return Err(ApiError::bad_request(format!(
                        "activated must include the seed {seed} itself"
                    )));
                }
                let seeds = seeds.clone();
                let reported = activated.clone();
                let newly = entry.with_session(move |_, session| {
                    session.apply_observations(&seeds, &reported)
                })?;
                (activated.clone(), newly)
            }
        };
        entry.pending.clear();
        let round_k = entry.pending_k;
        entry.rounds.push(RoundRec {
            k: round_k,
            req: req.clone(),
        });
        let seq = self.log(|| Record::ObserveBatch {
            token: token.to_string(),
            req: req.clone(),
        })?;
        entry.last_seq = entry.last_seq.max(seq);
        let ledger = entry.ledger()?;
        Ok(Observed {
            newly_activated,
            activated,
            ledger,
        })
    }

    /// The session's current profit ledger.
    pub fn ledger(&self, token: &str) -> Result<Ledger, ApiError> {
        let entry = self.entry(token)?;
        let mut entry = lock_entry(&entry);
        entry.last_touched_ms = self.now_ms();
        entry.ledger()
    }

    /// Closes a session; returns whether it existed.
    pub fn delete(&self, token: &str) -> bool {
        let removed = self
            .sessions
            .lock()
            .expect("session table poisoned")
            .remove(token)
            .is_some();
        if removed {
            // Replay deletes (journal recovery discarding a diverged
            // session) are bookkeeping, not API traffic.
            if !self.replaying.load(Ordering::SeqCst) {
                if let Some(m) = self.metrics.get() {
                    m.sessions_deleted.inc();
                }
            }
            // Best-effort, as in the sweep: the removal is already
            // visible; degraded mode gates new mutations at the router.
            let _ = self.log(|| Record::Delete {
                token: token.to_string(),
            });
        }
        removed
    }
}

/// Locks a session entry, recovering from poison: a panic inside an earlier
/// request must quarantine that session (handled via the taken-state check),
/// not wedge every later request on the same entry.
fn lock_entry(entry: &Arc<Mutex<SessionEntry>>) -> std::sync::MutexGuard<'_, SessionEntry> {
    entry.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// SplitMix64 — scrambles the sequential counter into opaque-looking tokens.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{PolicySpec, SnapshotReq, SnapshotSource};

    fn manager() -> SessionManager {
        let store = Arc::new(SnapshotStore::new());
        store.insert(
            Snapshot::build(&SnapshotReq {
                name: "g".into(),
                source: SnapshotSource::Preset {
                    dataset: "nethept".into(),
                    scale: 0.02,
                },
                k: 5,
                rr_theta: 5_000,
                seed: 1,
                threads: 1,
            })
            .unwrap(),
        );
        SessionManager::new(store)
    }

    fn create(m: &SessionManager, policy: PolicySpec, world: u64) -> String {
        m.create(&CreateSessionReq {
            snapshot: "g".into(),
            policy,
            world_seed: world,
        })
        .unwrap()
        .0
    }

    #[test]
    fn full_deploy_all_run_through_the_protocol() {
        let m = manager();
        let token = create(&m, PolicySpec::DeployAll, 7);
        let mut selected = Vec::new();
        loop {
            let batch = m.next(&token).unwrap();
            if batch.done {
                break;
            }
            let seed = batch.seeds[0];
            let obs = m.observe(&token, &ObserveReq::Simulate { seed }).unwrap();
            assert!(obs.activated.contains(&seed));
            selected.push(seed);
        }
        let ledger = m.ledger(&token).unwrap();
        assert!(ledger.done);
        assert_eq!(ledger.selected, selected);
        assert_eq!(ledger.algorithm, "DeployAll");
        assert!(!selected.is_empty());
        assert!(m.delete(&token));
        assert!(!m.delete(&token));
        assert!(m.ledger(&token).is_err());
    }

    #[test]
    fn out_of_order_calls_conflict() {
        let m = manager();
        let token = create(&m, PolicySpec::DeployAll, 7);
        // observe before any next: 409.
        let err = m
            .observe(&token, &ObserveReq::Simulate { seed: 0 })
            .unwrap_err();
        assert_eq!(err.status, 409);
        let batch = m.next(&token).unwrap();
        let seed = batch.seeds[0];
        // next again without observing: idempotent — same pending seed back.
        let retry = m.next(&token).unwrap();
        assert_eq!(retry.seeds, vec![seed]);
        assert!(!retry.done);
        // observing the wrong seed: 409.
        let err = m
            .observe(&token, &ObserveReq::Simulate { seed: seed + 1 })
            .unwrap_err();
        assert_eq!(err.status, 409);
        // correct observation unblocks.
        m.observe(&token, &ObserveReq::Simulate { seed }).unwrap();
        assert!(m.next(&token).is_ok());
    }

    #[test]
    fn report_mode_validates_and_applies_external_activations() {
        let m = manager();
        let token = create(&m, PolicySpec::DeployAll, 7);
        let seed = m.next(&token).unwrap().seeds[0];
        let err = m
            .observe(
                &token,
                &ObserveReq::Report {
                    seed,
                    activated: vec![u32::MAX],
                },
            )
            .unwrap_err();
        assert_eq!(err.status, 400);
        // A report omitting the seed itself is inconsistent under IC: 400.
        let err = m
            .observe(
                &token,
                &ObserveReq::Report {
                    seed,
                    activated: vec![],
                },
            )
            .unwrap_err();
        assert_eq!(err.status, 400);
        let obs = m
            .observe(
                &token,
                &ObserveReq::Report {
                    seed,
                    activated: vec![seed],
                },
            )
            .unwrap();
        assert_eq!(obs.ledger.total_activated, 1);
        assert_eq!(obs.ledger.selected, vec![seed]);
    }

    /// Drives `token` in batched rounds of `k`, observing by simulation;
    /// returns the final ledger.
    fn drive_batched(m: &SessionManager, token: &str, k: usize) -> Ledger {
        loop {
            let batch = m.next_batch(token, k).unwrap();
            if batch.done {
                return m.ledger(token).unwrap();
            }
            m.observe_batch(
                token,
                &ObserveBatchReq::Simulate {
                    seeds: batch.seeds.clone(),
                },
            )
            .unwrap();
        }
    }

    #[test]
    fn batch_size_one_is_byte_identical_to_single_seed_protocol() {
        let m = manager();
        for world in [3u64, 11, 27] {
            let single = create(&m, PolicySpec::DeployAll, world);
            let batched = create(&m, PolicySpec::DeployAll, world);
            let a = drive_to_completion(&m, &single);
            let b = drive_batched(&m, &batched, 1);
            assert_eq!(a.selected, b.selected, "world {world}");
            assert_eq!(a.profit.to_bits(), b.profit.to_bits(), "world {world}");
            assert_eq!(a.rounds, b.rounds, "world {world}");
        }
    }

    #[test]
    fn batched_protocol_finishes_in_fewer_rounds() {
        let m = manager();
        let single = create(&m, PolicySpec::DeployAll, 5);
        let batched = create(&m, PolicySpec::DeployAll, 5);
        let a = drive_to_completion(&m, &single);
        let b = drive_batched(&m, &batched, 4);
        assert_eq!(
            a.selected.iter().copied().collect::<std::collections::HashSet<_>>(),
            b.selected.iter().copied().collect::<std::collections::HashSet<_>>(),
            "DeployAll takes every remaining target either way"
        );
        assert_eq!(a.profit.to_bits(), b.profit.to_bits());
        assert!(
            b.rounds < a.rounds,
            "batched {} vs single {}",
            b.rounds,
            a.rounds
        );
    }

    #[test]
    fn pending_batch_is_reserved_idempotently_and_conflicts_are_409() {
        let m = manager();
        let token = create(&m, PolicySpec::DeployAll, 7);
        // observe_batch before any next_batch: 409.
        let err = m
            .observe_batch(&token, &ObserveBatchReq::Simulate { seeds: vec![0] })
            .unwrap_err();
        assert_eq!(err.status, 409);
        let batch = m.next_batch(&token, 3).unwrap();
        assert!(batch.seeds.len() > 1, "{:?}", batch.seeds);
        // Retry with a different k: same pending batch back, verbatim.
        assert_eq!(m.next_batch(&token, 8).unwrap().seeds, batch.seeds);
        assert_eq!(m.next_batch(&token, 1).unwrap().seeds, batch.seeds);
        // The single-seed verbs conflict with a multi-seed pending batch.
        assert_eq!(m.next(&token).unwrap_err().status, 409);
        let err = m
            .observe(
                &token,
                &ObserveReq::Simulate {
                    seed: batch.seeds[0],
                },
            )
            .unwrap_err();
        assert_eq!(err.status, 409);
        // Wrong seeds (subset, reorder) conflict too.
        let err = m
            .observe_batch(
                &token,
                &ObserveBatchReq::Simulate {
                    seeds: vec![batch.seeds[0]],
                },
            )
            .unwrap_err();
        assert_eq!(err.status, 409);
        let mut reversed = batch.seeds.clone();
        reversed.reverse();
        let err = m
            .observe_batch(&token, &ObserveBatchReq::Simulate { seeds: reversed })
            .unwrap_err();
        assert_eq!(err.status, 409);
        // The exact batch unblocks, and counts one adaptivity round.
        let obs = m
            .observe_batch(
                &token,
                &ObserveBatchReq::Simulate {
                    seeds: batch.seeds.clone(),
                },
            )
            .unwrap();
        assert_eq!(obs.ledger.rounds, 1);
        assert_eq!(obs.ledger.selected, batch.seeds);
    }

    #[test]
    fn batch_report_mode_requires_every_seed_activated() {
        let m = manager();
        let token = create(&m, PolicySpec::DeployAll, 7);
        let batch = m.next_batch(&token, 2).unwrap();
        assert_eq!(batch.seeds.len(), 2);
        // Omitting one seed from the activation report: 400.
        let err = m
            .observe_batch(
                &token,
                &ObserveBatchReq::Report {
                    seeds: batch.seeds.clone(),
                    activated: vec![batch.seeds[0]],
                },
            )
            .unwrap_err();
        assert_eq!(err.status, 400);
        let obs = m
            .observe_batch(
                &token,
                &ObserveBatchReq::Report {
                    seeds: batch.seeds.clone(),
                    activated: batch.seeds.clone(),
                },
            )
            .unwrap();
        assert_eq!(obs.ledger.total_activated, 2);
        assert_eq!(obs.ledger.rounds, 1);
    }

    #[test]
    fn unknown_tokens_and_snapshots_are_404() {
        let m = manager();
        assert_eq!(m.next("nope").unwrap_err().status, 404);
        let err = m
            .create(&CreateSessionReq {
                snapshot: "missing".into(),
                policy: PolicySpec::DeployAll,
                world_seed: 0,
            })
            .unwrap_err();
        assert_eq!(err.status, 404);
    }

    #[test]
    fn sessions_progress_independently() {
        let m = manager();
        let a = create(&m, PolicySpec::DeployAll, 1);
        let b = create(&m, PolicySpec::Ars { prob: 1.0, seed: 0 }, 1);
        assert_eq!(m.len(), 2);
        let sa = m.next(&a).unwrap().seeds[0];
        let sb = m.next(&b).unwrap().seeds[0];
        // Same snapshot, same world, both policies take the first target.
        assert_eq!(sa, sb);
        m.observe(&a, &ObserveReq::Simulate { seed: sa }).unwrap();
        // b still pending; a can continue, and b's retry re-serves its seed.
        assert!(m.next(&a).is_ok());
        assert_eq!(m.next(&b).unwrap().seeds, vec![sb]);
        m.observe(&b, &ObserveReq::Simulate { seed: sb }).unwrap();
        assert!(m.next(&b).is_ok());
    }

    fn manager_with_mock_clock() -> (SessionManager, Arc<std::sync::atomic::AtomicU64>) {
        let store = Arc::new(SnapshotStore::new());
        store.insert(
            Snapshot::build(&SnapshotReq {
                name: "g".into(),
                source: SnapshotSource::Preset {
                    dataset: "nethept".into(),
                    scale: 0.02,
                },
                k: 5,
                rr_theta: 5_000,
                seed: 1,
                threads: 1,
            })
            .unwrap(),
        );
        let clock = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handle = clock.clone();
        let m = SessionManager::with_clock(
            store,
            Arc::new(move || handle.load(std::sync::atomic::Ordering::SeqCst)),
        );
        (m, clock)
    }

    #[test]
    fn sweep_evicts_idle_sessions_and_answers_410() {
        use std::sync::atomic::Ordering;
        let (m, clock) = manager_with_mock_clock();
        let idle = create(&m, PolicySpec::DeployAll, 1);
        let active = create(&m, PolicySpec::DeployAll, 2);

        clock.store(50_000, Ordering::SeqCst);
        m.ledger(&active).unwrap(); // a sign of life refreshes the stamp
        clock.store(70_000, Ordering::SeqCst);
        // idle untouched for 70s, active for 20s: TTL 60s evicts only idle.
        assert_eq!(m.sweep_expired(60_000), 1);
        assert_eq!(m.len(), 1);

        let err = m.next(&idle).unwrap_err();
        assert_eq!(err.status, 410, "evicted session answers Gone");
        assert!(err.message.contains("expired"));
        assert_eq!(m.ledger(&idle).unwrap_err().status, 410);
        assert!(m.was_expired(&idle));
        // The surviving session still works, and unknown tokens stay 404.
        assert!(m.next(&active).is_ok());
        assert_eq!(m.next("nope").unwrap_err().status, 404);
        // Re-sweeping is idempotent.
        assert_eq!(m.sweep_expired(60_000), 0);
    }

    #[test]
    fn sweep_counts_any_touch_as_life_and_spares_pending_work() {
        use std::sync::atomic::Ordering;
        let (m, clock) = manager_with_mock_clock();
        let token = create(&m, PolicySpec::DeployAll, 3);
        // A pending (unobserved) seed does not shield an abandoned session.
        m.next(&token).unwrap();
        clock.store(120_000, Ordering::SeqCst);
        assert_eq!(m.sweep_expired(60_000), 1);
        assert_eq!(
            m.observe(&token, &ObserveReq::Simulate { seed: 0 })
                .unwrap_err()
                .status,
            410
        );

        // But regular observes keep a slow-but-alive session going.
        let token = create(&m, PolicySpec::DeployAll, 4);
        for step in 1..=5u64 {
            clock.store(120_000 + step * 50_000, Ordering::SeqCst);
            assert_eq!(m.sweep_expired(60_000), 0, "step {step}");
            match m.next(&token) {
                Ok(batch) if !batch.done => {
                    m.observe(
                        &token,
                        &ObserveReq::Simulate {
                            seed: batch.seeds[0],
                        },
                    )
                    .unwrap();
                }
                _ => break,
            }
        }
        assert!(m.ledger(&token).is_ok());
    }

    #[test]
    fn tokens_are_unique() {
        let m = manager();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            assert!(seen.insert(create(&m, PolicySpec::DeployAll, 0)));
        }
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("atpm-mgr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    /// Drives `token` on `m` until done, observing by simulation; returns
    /// the final ledger.
    fn drive_to_completion(m: &SessionManager, token: &str) -> Ledger {
        loop {
            let batch = m.next(token).unwrap();
            if batch.done {
                return m.ledger(token).unwrap();
            }
            m.observe(
                token,
                &ObserveReq::Simulate {
                    seed: batch.seeds[0],
                },
            )
            .unwrap();
        }
    }

    #[test]
    fn journal_recovery_rebuilds_an_interrupted_session_bit_for_bit() {
        let path = temp_journal("recover");
        // Reference: the same session driven uninterrupted, no journal.
        let reference = {
            let m = manager();
            let token = create(&m, PolicySpec::DeployAll, 11);
            drive_to_completion(&m, &token)
        };

        // "Crash" mid-session: two observed rounds plus a pending seed,
        // then the manager is simply dropped (no shutdown, no sync).
        let (token, pending) = {
            let m = manager();
            let (journal, records) = Journal::open(&path).unwrap();
            assert!(records.is_empty());
            m.attach_journal(Arc::new(journal));
            let token = create(&m, PolicySpec::DeployAll, 11);
            for _ in 0..2 {
                let seed = m.next(&token).unwrap().seeds[0];
                m.observe(&token, &ObserveReq::Simulate { seed }).unwrap();
            }
            let pending = m.next(&token).unwrap().seeds[0];
            (token, pending)
        };

        // Restart: fresh manager over an equivalent store, same journal.
        let m = manager();
        let (journal, records) = Journal::open(&path).unwrap();
        assert_eq!(m.recover(&records), 1, "one live session to recover");
        m.attach_journal(Arc::new(journal));
        // The client's retried `next` gets the exact pending seed back.
        assert_eq!(m.next(&token).unwrap().seeds, vec![pending]);
        let recovered = drive_to_completion(&m, &token);
        assert_eq!(recovered.selected, reference.selected);
        assert_eq!(
            recovered.profit.to_bits(),
            reference.profit.to_bits(),
            "recovered ledger must be bit-equal"
        );
        assert_eq!(recovered.total_activated, reference.total_activated);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_recovery_reserves_the_exact_pending_batch() {
        let path = temp_journal("recover-batch");
        // Reference: the same batched session driven uninterrupted.
        let reference = {
            let m = manager();
            let token = create(&m, PolicySpec::DeployAll, 13);
            drive_batched(&m, &token, 3)
        };

        // "Crash" with one observed round plus a pending 3-seed batch.
        let (token, pending) = {
            let m = manager();
            let (journal, records) = Journal::open(&path).unwrap();
            assert!(records.is_empty());
            m.attach_journal(Arc::new(journal));
            let token = create(&m, PolicySpec::DeployAll, 13);
            let first = m.next_batch(&token, 3).unwrap();
            m.observe_batch(
                &token,
                &ObserveBatchReq::Simulate { seeds: first.seeds },
            )
            .unwrap();
            let pending = m.next_batch(&token, 3).unwrap().seeds;
            (token, pending)
        };

        let m = manager();
        let (journal, records) = Journal::open(&path).unwrap();
        assert_eq!(m.recover(&records), 1);
        m.attach_journal(Arc::new(journal));
        // The retried next_batch re-serves the exact pending batch.
        assert_eq!(m.next_batch(&token, 3).unwrap().seeds, pending);
        let recovered = {
            m.observe_batch(&token, &ObserveBatchReq::Simulate { seeds: pending })
                .unwrap();
            drive_batched(&m, &token, 3)
        };
        assert_eq!(recovered.selected, reference.selected);
        assert_eq!(
            recovered.profit.to_bits(),
            reference.profit.to_bits(),
            "recovered batched ledger must be bit-equal"
        );
        assert_eq!(recovered.rounds, reference.rounds);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_advances_the_token_counter_and_drops_deleted_sessions() {
        let path = temp_journal("counter");
        let old_token = {
            let m = manager();
            let (journal, _) = Journal::open(&path).unwrap();
            m.attach_journal(Arc::new(journal));
            let dead = create(&m, PolicySpec::DeployAll, 1);
            m.delete(&dead);
            create(&m, PolicySpec::DeployAll, 2)
        };
        let m = manager();
        let (journal, records) = Journal::open(&path).unwrap();
        assert_eq!(m.recover(&records), 1, "deleted session stays deleted");
        m.attach_journal(Arc::new(journal));
        assert!(m.ledger(&old_token).is_ok());
        let fresh = create(&m, PolicySpec::DeployAll, 3);
        assert_ne!(fresh, old_token, "counter must advance past the journal");
        let _ = std::fs::remove_file(&path);
    }
}
