//! Crash-safe session journal (`ATPMJNL1`): an append-only, checksummed
//! log of committed protocol transitions.
//!
//! Sessions are deterministic functions of `(snapshot, policy spec,
//! world_seed, ordered observations)` — the entire adaptive run can be
//! reconstructed by replaying the protocol calls that produced it. So the
//! journal does not serialize `SessionState` (megabytes of residual graph
//! per record); it logs the *transitions* the manager committed, and
//! recovery re-drives them through the same [`SessionManager`] code paths
//! that served them live. A recovered session is therefore bit-equal to
//! the lost one: same token, same seed sequence, same profit ledger.
//!
//! ## Wire format
//!
//! ```text
//! "ATPMJNL1"                                  8-byte magic
//! repeat:
//!   len: u32 LE                               payload byte length
//!   crc: u32 LE                               CRC-32 (IEEE) of payload
//!   payload: len bytes                        one JSON record, {"op": ...}
//! ```
//!
//! Appends are `write_all` + `flush` per record, so a crash can only tear
//! the *final* record. [`Journal::open`] validates each record's length
//! and checksum and truncates the file at the first torn or corrupt
//! offset — everything before the checksum boundary replays, everything
//! after never happened (the client's retry layer re-drives the lost
//! tail).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json::Json;
use crate::protocol::{nodes_field, ApiError, CreateSessionReq, ObserveReq};
use atpm_graph::Node;

const MAGIC: &[u8; 8] = b"ATPMJNL1";
/// Upper bound on a single record's payload; a declared length beyond this
/// is treated as tail corruption, not an allocation request.
const MAX_RECORD: usize = 16 * 1024 * 1024;

/// One committed protocol transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// `POST /sessions` succeeded: session `token` (minted from counter
    /// value `id`) exists with this request.
    Create {
        /// Raw counter value the token was minted from (recovery must
        /// advance the counter past it so new tokens cannot collide).
        id: u64,
        /// The minted token.
        token: String,
        /// The creating request (snapshot, policy, world seed).
        req: CreateSessionReq,
    },
    /// `POST next` committed a new seed batch (idempotent replays of an
    /// already-pending seed are not journaled — they change nothing).
    Next {
        /// Session token.
        token: String,
        /// The committed batch.
        seeds: Vec<Node>,
        /// Whether the policy finished.
        done: bool,
    },
    /// `POST observe` applied an observation.
    Observe {
        /// Session token.
        token: String,
        /// The observation applied.
        req: ObserveReq,
    },
    /// The session ended (`DELETE`, or an expiry sweep evicted it).
    Delete {
        /// Session token.
        token: String,
    },
}

impl Record {
    /// JSON payload form.
    pub fn to_json(&self) -> Json {
        match self {
            Record::Create { id, token, req } => Json::obj([
                ("op", Json::Str("create".into())),
                ("id", Json::UInt(*id)),
                ("token", Json::Str(token.clone())),
                ("req", req.to_json()),
            ]),
            Record::Next { token, seeds, done } => Json::obj([
                ("op", Json::Str("next".into())),
                ("token", Json::Str(token.clone())),
                ("seeds", Json::nums(seeds.iter().copied())),
                ("done", Json::Bool(*done)),
            ]),
            Record::Observe { token, req } => Json::obj([
                ("op", Json::Str("observe".into())),
                ("token", Json::Str(token.clone())),
                ("req", req.to_json()),
            ]),
            Record::Delete { token } => Json::obj([
                ("op", Json::Str("delete".into())),
                ("token", Json::Str(token.clone())),
            ]),
        }
    }

    /// Parses a payload.
    pub fn from_json(v: &Json) -> Result<Record, ApiError> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("record missing 'op'"))?;
        let token = |v: &Json| -> Result<String, ApiError> {
            v.get("token")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ApiError::bad_request("record missing 'token'"))
        };
        match op {
            "create" => Ok(Record::Create {
                id: v
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ApiError::bad_request("create record missing 'id'"))?,
                token: token(v)?,
                req: CreateSessionReq::from_json(
                    v.get("req")
                        .ok_or_else(|| ApiError::bad_request("create record missing 'req'"))?,
                )?,
            }),
            "next" => Ok(Record::Next {
                token: token(v)?,
                seeds: nodes_field(v, "seeds")?,
                done: v
                    .get("done")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ApiError::bad_request("next record missing 'done'"))?,
            }),
            "observe" => Ok(Record::Observe {
                token: token(v)?,
                req: ObserveReq::from_json(
                    v.get("req")
                        .ok_or_else(|| ApiError::bad_request("observe record missing 'req'"))?,
                )?,
            }),
            "delete" => Ok(Record::Delete { token: token(v)? }),
            other => Err(ApiError::bad_request(format!(
                "unknown journal op '{other}'"
            ))),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) — bitwise, no table;
/// journal records are small and appended off the hot request path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An open journal file, positioned for appends.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, validates the
    /// magic, parses every intact record, and truncates the file at the
    /// first torn or corrupt offset. Returns the journal (positioned at
    /// the new end) plus the surviving records in append order.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Vec<Record>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            file.flush()?;
            return Ok((
                Journal {
                    file: Mutex::new(file),
                },
                Vec::new(),
            ));
        }
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an ATPMJNL1 journal (bad magic)",
            ));
        }
        let mut records = Vec::new();
        let mut offset = MAGIC.len();
        // Walk record by record; the first frame that fails any check marks
        // the torn tail — nothing past a bad checksum is trustworthy.
        while let Some(header) = bytes.get(offset..offset + 8) {
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if len > MAX_RECORD {
                break;
            }
            let Some(payload) = bytes.get(offset + 8..offset + 8 + len) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            let parsed = std::str::from_utf8(payload)
                .ok()
                .and_then(|text| Json::parse(text).ok())
                .and_then(|json| Record::from_json(&json).ok());
            let Some(record) = parsed else {
                // A record that checksums but doesn't parse is corruption
                // (or a future format); treat it as the tail boundary.
                break;
            };
            records.push(record);
            offset += 8 + len;
        }
        if offset < bytes.len() {
            file.set_len(offset as u64)?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        Ok((
            Journal {
                file: Mutex::new(file),
            },
            records,
        ))
    }

    /// Appends one record (length + checksum + payload), flushed to the OS
    /// before returning so a process crash cannot lose it.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        let payload = record.to_json().encode();
        let payload = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.write_all(&frame)?;
        file.flush()
    }

    /// Durability barrier: `fsync` the journal (used at graceful shutdown;
    /// per-append fsync would serialize every request on the disk).
    pub fn sync(&self) -> io::Result<()> {
        self.file
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PolicySpec;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("atpm-journal-{tag}-{}", std::process::id()));
        p
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Create {
                id: 1,
                token: "s00000001".into(),
                req: CreateSessionReq {
                    snapshot: "g".into(),
                    policy: PolicySpec::Ars { prob: 0.5, seed: 9 },
                    world_seed: 42,
                },
            },
            Record::Next {
                token: "s00000001".into(),
                seeds: vec![17],
                done: false,
            },
            Record::Observe {
                token: "s00000001".into(),
                req: ObserveReq::Report {
                    seed: 17,
                    activated: vec![17, 4],
                },
            },
            Record::Next {
                token: "s00000001".into(),
                seeds: vec![],
                done: true,
            },
            Record::Delete {
                token: "s00000001".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_json() {
        for record in sample_records() {
            let encoded = record.to_json().encode();
            let parsed = Record::from_json(&Json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(parsed, record);
        }
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (journal, existing) = Journal::open(&path).unwrap();
        assert!(existing.is_empty());
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let (_journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, sample_records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_at_the_checksum_boundary() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        // Tear the final record mid-payload, as a crash mid-write would.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (journal, replayed) = Journal::open(&path).unwrap();
        let all = sample_records();
        assert_eq!(replayed, all[..all.len() - 1]);
        // The torn bytes are gone: appending resumes from the boundary.
        journal.append(all.last().unwrap()).unwrap();
        drop(journal);
        let (_journal, healed) = Journal::open(&path).unwrap();
        assert_eq!(healed, all);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_marks_the_tail() {
        let path = temp_path("crc");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the second record: it and everything
        // after it must be discarded (a bad middle means an untrustworthy
        // tail), while the first record survives.
        let first_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let second_payload_start = 8 + 8 + first_len + 8;
        bytes[second_payload_start + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, sample_records()[..1]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_refused_not_clobbered() {
        let path = temp_path("magic");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The file was left alone.
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a journal");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
