//! Crash-safe session journal: an append-only, checksummed log of
//! committed protocol transitions with group-commit fsync, checkpoint +
//! segment rotation, and fault-injectable file I/O.
//!
//! Sessions are deterministic functions of `(snapshot, policy spec,
//! world_seed, ordered observations)` — the entire adaptive run can be
//! reconstructed by replaying the protocol calls that produced it. So the
//! journal does not serialize `SessionState` (megabytes of residual graph
//! per record); it logs the *transitions* the manager committed, and
//! recovery re-drives them through the same [`SessionManager`] code paths
//! that served them live. A recovered session is therefore bit-equal to
//! the lost one: same token, same seed sequence, same profit ledger.
//!
//! ## Wire format
//!
//! Two segment generations share the frame discipline; readers accept
//! both, writers produce v2:
//!
//! ```text
//! "ATPMJNL1"                         8-byte magic (legacy v1 segments)
//! repeat:
//!   len: u32 LE                      payload byte length
//!   crc: u32 LE                      CRC-32 (IEEE) of payload
//!   payload: len bytes               one JSON record, {"op": ...}
//!
//! "ATPMJNL2"                         8-byte magic (current segments)
//! repeat:
//!   len: u32 LE                      payload byte length
//!   crc: u32 LE                      CRC-32 (IEEE) of seq ++ payload
//!   seq: u64 LE                      global commit sequence number
//!   payload: len bytes               one JSON record, {"op": ...}
//! ```
//!
//! Appends are `write_all` + `flush` per record, so a crash can only tear
//! the *final* record. Opening validates each record's length and checksum
//! and truncates the active segment at the first torn or corrupt offset —
//! everything before the checksum boundary replays, everything after never
//! happened (the client's retry layer re-drives the lost tail). Torn tails
//! are counted and reported in [`OpenInfo`], never silently swallowed.
//!
//! ## Durability: group-commit fsync
//!
//! [`FsyncPolicy`] decides when appended records become *durable* (past
//! the kernel's page cache). `shutdown` defers the barrier to graceful
//! shutdown (a power loss can lose the whole run); `always` fsyncs behind
//! every record; `group:MS` batches concurrent appends behind one barrier
//! with a bounded-latency window — the first committer becomes the leader,
//! sleeps `MS`, issues one fsync for everything appended meanwhile, and
//! wakes the group. [`Journal::commit`] blocks until the caller's record
//! is durable, so a reply is never sent for a record a crash could lose.
//!
//! A failed fsync **poisons** the journal (fsyncgate semantics: the
//! kernel may have dropped the dirty pages, so retrying and pretending
//! would silently ack lost writes). A poisoned journal fails every
//! subsequent append/commit; the server degrades to read-only.
//!
//! ## Checkpoint + rotation (`ATPMCKP1`)
//!
//! Rotation seals the active segment as `<path>.old.<seq>` and starts a
//! fresh one; a checkpoint then serializes every live session's replayable
//! history into `<path>.ckp` (CRC-framed like the journal, written to a
//! temp file, fsynced, atomically renamed) and deletes segments older than
//! the checkpoint. Recovery = load checkpoint + replay tail segments,
//! skipping records already folded into a session's checkpointed
//! `last_seq` — bounded work, regardless of how long the server ran.
//!
//! ## Fault injection
//!
//! Every file operation routes through a [`JournalIo`] implementation.
//! [`RealIo`] is the passthrough; [`FaultIo`] injects scripted faults
//! (short write, `EINTR`, `ENOSPC`, failing fsync) in the spirit of
//! `atpm-net`'s `SysPolicy`, with process-wide injection counters exported
//! as `atpm_serve_journal_fault_injected_total`.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::protocol::{nodes_field, ApiError, CreateSessionReq, ObserveBatchReq, ObserveReq};
use atpm_graph::Node;

const MAGIC_V1: &[u8; 8] = b"ATPMJNL1";
const MAGIC_V2: &[u8; 8] = b"ATPMJNL2";
const CKP_MAGIC: &[u8; 8] = b"ATPMCKP1";
/// Upper bound on a single record's payload; a declared length beyond this
/// is treated as tail corruption, not an allocation request.
const MAX_RECORD: usize = 16 * 1024 * 1024;

/// One committed protocol transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// `POST /sessions` succeeded: session `token` (minted from counter
    /// value `id`) exists with this request.
    Create {
        /// Raw counter value the token was minted from (recovery must
        /// advance the counter past it so new tokens cannot collide).
        id: u64,
        /// The minted token.
        token: String,
        /// The creating request (snapshot, policy, world seed).
        req: CreateSessionReq,
    },
    /// `POST next` committed a new seed batch (idempotent replays of an
    /// already-pending seed are not journaled — they change nothing).
    Next {
        /// Session token.
        token: String,
        /// The committed batch.
        seeds: Vec<Node>,
        /// Whether the policy finished.
        done: bool,
    },
    /// `POST observe` applied an observation.
    Observe {
        /// Session token.
        token: String,
        /// The observation applied.
        req: ObserveReq,
    },
    /// `POST next_batch` committed a new seed batch under an explicit
    /// requested round size (idempotent re-serves are not journaled).
    NextBatch {
        /// Session token.
        token: String,
        /// The committed batch.
        seeds: Vec<Node>,
        /// The `k` the round was requested with. Replay must re-ask with
        /// the same `k` — a policy may commit fewer than `k` seeds, and
        /// the request size is part of its deterministic decision state.
        k: usize,
        /// Whether the policy finished.
        done: bool,
    },
    /// `POST observe_batch` applied a joint batch observation.
    ObserveBatch {
        /// Session token.
        token: String,
        /// The observation applied.
        req: ObserveBatchReq,
    },
    /// The session ended (`DELETE`, or an expiry sweep evicted it).
    Delete {
        /// Session token.
        token: String,
    },
}

impl Record {
    /// JSON payload form.
    pub fn to_json(&self) -> Json {
        match self {
            Record::Create { id, token, req } => Json::obj([
                ("op", Json::Str("create".into())),
                ("id", Json::UInt(*id)),
                ("token", Json::Str(token.clone())),
                ("req", req.to_json()),
            ]),
            Record::Next { token, seeds, done } => Json::obj([
                ("op", Json::Str("next".into())),
                ("token", Json::Str(token.clone())),
                ("seeds", Json::nums(seeds.iter().copied())),
                ("done", Json::Bool(*done)),
            ]),
            Record::Observe { token, req } => Json::obj([
                ("op", Json::Str("observe".into())),
                ("token", Json::Str(token.clone())),
                ("req", req.to_json()),
            ]),
            Record::NextBatch {
                token,
                seeds,
                k,
                done,
            } => Json::obj([
                ("op", Json::Str("next_batch".into())),
                ("token", Json::Str(token.clone())),
                ("seeds", Json::nums(seeds.iter().copied())),
                ("k", Json::UInt(*k as u64)),
                ("done", Json::Bool(*done)),
            ]),
            Record::ObserveBatch { token, req } => Json::obj([
                ("op", Json::Str("observe_batch".into())),
                ("token", Json::Str(token.clone())),
                ("req", req.to_json()),
            ]),
            Record::Delete { token } => Json::obj([
                ("op", Json::Str("delete".into())),
                ("token", Json::Str(token.clone())),
            ]),
        }
    }

    /// Parses a payload.
    pub fn from_json(v: &Json) -> Result<Record, ApiError> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("record missing 'op'"))?;
        let token = |v: &Json| -> Result<String, ApiError> {
            v.get("token")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ApiError::bad_request("record missing 'token'"))
        };
        match op {
            "create" => Ok(Record::Create {
                id: v
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ApiError::bad_request("create record missing 'id'"))?,
                token: token(v)?,
                req: CreateSessionReq::from_json(
                    v.get("req")
                        .ok_or_else(|| ApiError::bad_request("create record missing 'req'"))?,
                )?,
            }),
            "next" => Ok(Record::Next {
                token: token(v)?,
                seeds: nodes_field(v, "seeds")?,
                done: v
                    .get("done")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ApiError::bad_request("next record missing 'done'"))?,
            }),
            "observe" => Ok(Record::Observe {
                token: token(v)?,
                req: ObserveReq::from_json(
                    v.get("req")
                        .ok_or_else(|| ApiError::bad_request("observe record missing 'req'"))?,
                )?,
            }),
            "next_batch" => Ok(Record::NextBatch {
                token: token(v)?,
                seeds: nodes_field(v, "seeds")?,
                k: v
                    .get("k")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ApiError::bad_request("next_batch record missing 'k'"))?
                    as usize,
                done: v
                    .get("done")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ApiError::bad_request("next_batch record missing 'done'"))?,
            }),
            "observe_batch" => Ok(Record::ObserveBatch {
                token: token(v)?,
                req: ObserveBatchReq::from_json(v.get("req").ok_or_else(|| {
                    ApiError::bad_request("observe_batch record missing 'req'")
                })?)?,
            }),
            "delete" => Ok(Record::Delete { token: token(v)? }),
            other => Err(ApiError::bad_request(format!(
                "unknown journal op '{other}'"
            ))),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) — bitwise, no table;
/// journal records are small and appended off the hot request path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Fsync policy

/// When appended records become durable. Parsed from `--fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// One fsync at graceful shutdown; a power loss can lose the run.
    Shutdown,
    /// Group commit: batch appends behind one barrier with a bounded
    /// window of this many milliseconds. A power loss can lose at most
    /// the records of the last window — and none that were acked.
    Group(u64),
    /// Fsync behind every record (a zero-width group window).
    Always,
}

impl FsyncPolicy {
    /// Parses `shutdown`, `always`, or `group:MS`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "shutdown" => Ok(FsyncPolicy::Shutdown),
            "always" => Ok(FsyncPolicy::Always),
            _ => match s.strip_prefix("group:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(FsyncPolicy::Group)
                    .map_err(|_| format!("bad group window '{ms}' (want group:MS)")),
                None => Err(format!(
                    "unknown fsync policy '{s}' (want shutdown, group:MS, or always)"
                )),
            },
        }
    }

    /// Canonical display form (the `/healthz` `fsync_policy` value).
    pub fn render(&self) -> String {
        match self {
            FsyncPolicy::Shutdown => "shutdown".to_string(),
            FsyncPolicy::Group(ms) => format!("group:{ms}"),
            FsyncPolicy::Always => "always".to_string(),
        }
    }
}

impl Default for FsyncPolicy {
    /// The durable-by-default setting: a 5 ms group window.
    fn default() -> FsyncPolicy {
        FsyncPolicy::Group(5)
    }
}

// ---------------------------------------------------------------------------
// Fault-injectable file I/O

/// A file operation site where [`FaultIo`] can inject a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoSite {
    /// Creating/truncating a file (fresh segment, checkpoint temp).
    Create,
    /// Appending frame bytes.
    Write,
    /// A durability barrier (`fsync`) on a file or directory.
    Fsync,
    /// Atomic rename (rotation, checkpoint publish).
    Rename,
    /// Deleting an obsolete segment or stale temp file.
    Remove,
}

/// Number of injectable sites.
pub const IO_SITE_COUNT: usize = 5;

/// Every site with its metrics label, in index order.
pub const IO_SITES: [(IoSite, &str); IO_SITE_COUNT] = [
    (IoSite::Create, "create"),
    (IoSite::Write, "write"),
    (IoSite::Fsync, "fsync"),
    (IoSite::Rename, "rename"),
    (IoSite::Remove, "remove"),
];

fn io_site_index(site: IoSite) -> usize {
    match site {
        IoSite::Create => 0,
        IoSite::Write => 1,
        IoSite::Fsync => 2,
        IoSite::Rename => 3,
        IoSite::Remove => 4,
    }
}

/// Process-wide injected-fault counters, one per site (exported as
/// `atpm_serve_journal_fault_injected_total`). Cumulative across every
/// `FaultIo` instance — mirrors `atpm_net::fault::injected_total`.
static INJECTED: [AtomicU64; IO_SITE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Total faults injected at `site` since process start.
pub fn injected_total(site: IoSite) -> u64 {
    INJECTED[io_site_index(site)].load(Ordering::Relaxed)
}

/// The journal's file-operation surface. Everything the journal and
/// checkpoint writer do to the filesystem goes through one of these, so a
/// fault-injecting implementation can exercise every failure edge.
pub trait JournalIo: Send + Sync {
    /// Create (truncating) a file open for read+write.
    fn create(&self, path: &Path) -> io::Result<File>;
    /// Append bytes to an open file.
    fn write_all(&self, file: &File, buf: &[u8]) -> io::Result<()>;
    /// Durability barrier on an open file (or directory) handle.
    fn fsync(&self, file: &File) -> io::Result<()>;
    /// Atomic rename.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// Passthrough to the real filesystem.
#[derive(Debug, Default)]
pub struct RealIo;

impl JournalIo for RealIo {
    fn create(&self, path: &Path) -> io::Result<File> {
        OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
    }

    fn write_all(&self, mut file: &File, buf: &[u8]) -> io::Result<()> {
        file.write_all(buf)
    }

    fn fsync(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// What a scripted fault does when it fires.
#[derive(Debug, Clone, Copy)]
enum Fault {
    /// Fail with this errno.
    Fail(i32),
    /// Write only this many bytes, then fail — a torn append.
    Short(usize),
}

struct FaultScript {
    site: IoSite,
    /// Fires on the nth (1-based) operation at `site`.
    nth: u64,
    fault: Fault,
}

/// A [`JournalIo`] that injects scripted faults, passing everything else
/// through to the real filesystem. Scripts are one-shot: the nth operation
/// at a site fails, all others succeed.
#[derive(Default)]
pub struct FaultIo {
    counts: [AtomicU64; IO_SITE_COUNT],
    scripts: Mutex<Vec<FaultScript>>,
}

impl FaultIo {
    /// A fault plan with no scripted failures (pure passthrough).
    pub fn new() -> FaultIo {
        FaultIo::default()
    }

    /// Fail the `nth` (1-based) operation at `site` with `errno`.
    pub fn fail(self, site: IoSite, nth: u64, errno: i32) -> FaultIo {
        self.scripts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(FaultScript {
                site,
                nth,
                fault: Fault::Fail(errno),
            });
        self
    }

    /// Tear the `nth` (1-based) write: only `bytes` of the buffer land
    /// before the error surfaces.
    pub fn short_write(self, nth: u64, bytes: usize) -> FaultIo {
        self.scripts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(FaultScript {
                site: IoSite::Write,
                nth,
                fault: Fault::Short(bytes),
            });
        self
    }

    fn gate(&self, site: IoSite) -> Option<Fault> {
        let n = self.counts[io_site_index(site)].fetch_add(1, Ordering::Relaxed) + 1;
        let scripts = self.scripts.lock().unwrap_or_else(|p| p.into_inner());
        let fault = scripts
            .iter()
            .find(|s| s.site == site && s.nth == n)
            .map(|s| s.fault)?;
        INJECTED[io_site_index(site)].fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }
}

impl JournalIo for FaultIo {
    fn create(&self, path: &Path) -> io::Result<File> {
        if let Some(Fault::Fail(errno)) = self.gate(IoSite::Create) {
            return Err(io::Error::from_raw_os_error(errno));
        }
        RealIo.create(path)
    }

    fn write_all(&self, file: &File, buf: &[u8]) -> io::Result<()> {
        match self.gate(IoSite::Write) {
            Some(Fault::Fail(errno)) => Err(io::Error::from_raw_os_error(errno)),
            Some(Fault::Short(n)) => {
                RealIo.write_all(file, &buf[..n.min(buf.len())])?;
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected short write",
                ))
            }
            None => RealIo.write_all(file, buf),
        }
    }

    fn fsync(&self, file: &File) -> io::Result<()> {
        if let Some(Fault::Fail(errno)) = self.gate(IoSite::Fsync) {
            return Err(io::Error::from_raw_os_error(errno));
        }
        RealIo.fsync(file)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(Fault::Fail(errno)) = self.gate(IoSite::Rename) {
            return Err(io::Error::from_raw_os_error(errno));
        }
        RealIo.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        if let Some(Fault::Fail(errno)) = self.gate(IoSite::Remove) {
            return Err(io::Error::from_raw_os_error(errno));
        }
        RealIo.remove(path)
    }
}

/// Retry a transiently-interrupted syscall (`EINTR`) a bounded number of
/// times; any other error surfaces immediately.
fn retry_eintr<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    for _ in 0..16 {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
    op()
}

// ---------------------------------------------------------------------------
// Checkpoint sessions

/// One committed adaptivity round as checkpointed: the observation that
/// closed it, tagged with the `k` the batch was requested with (replay
/// must re-ask with the same `k` — the request size is part of the
/// policy's deterministic decision state).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRec {
    /// The `next`/`next_batch` request size that opened the round
    /// (1 for the single-seed routes).
    pub k: usize,
    /// The observation that closed the round.
    pub req: ObserveBatchReq,
}

impl RoundRec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::UInt(self.k as u64)),
            ("req", self.req.to_json()),
        ])
    }

    /// Parses a round. Accepts the pre-batch shape (a bare `ObserveReq`
    /// with its `seed` field) as a round of `k = 1`, so checkpoints
    /// written before batched seeding keep loading.
    fn from_json(v: &Json) -> Result<RoundRec, ApiError> {
        if let Some(req) = v.get("req") {
            return Ok(RoundRec {
                k: v
                    .get("k")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ApiError::bad_request("round missing 'k'"))?
                    as usize,
                req: ObserveBatchReq::from_json(req)?,
            });
        }
        Ok(RoundRec {
            k: 1,
            req: ObserveReq::from_json(v)?.into(),
        })
    }
}

/// One live session's replayable history, as serialized into an
/// `ATPMCKP1` checkpoint. The stepper itself (internal RNG, residual
/// graph cursors) is never serialized — the session is re-derived by
/// replaying `req` + `rounds` through the live manager, which is exactly
/// the journal-recovery path and therefore bit-equal by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CkpSession {
    /// Session token.
    pub token: String,
    /// Counter value the token was minted from.
    pub id: u64,
    /// The creating request.
    pub req: CreateSessionReq,
    /// Every committed round, in order (each carries its batch).
    pub rounds: Vec<RoundRec>,
    /// A handed-out-but-unobserved batch, if any (empty = none).
    pub pending: Vec<Node>,
    /// The request size of the most recent stepper round — the `k` to
    /// replay the pending batch (or the final, policy-exhausting round)
    /// with. 1 for sessions driven over the single-seed routes.
    pub pending_k: usize,
    /// Whether the policy finished.
    pub done: bool,
    /// Highest journal seq folded into this state; tail records at or
    /// below it are already reflected here and must not replay.
    pub last_seq: u64,
}

impl CkpSession {
    fn to_json(&self) -> Json {
        Json::obj([
            ("op", Json::Str("ckp-session".into())),
            ("token", Json::Str(self.token.clone())),
            ("id", Json::UInt(self.id)),
            ("req", self.req.to_json()),
            (
                "rounds",
                Json::Arr(self.rounds.iter().map(RoundRec::to_json).collect()),
            ),
            ("pending", Json::nums(self.pending.iter().copied())),
            ("pending_k", Json::UInt(self.pending_k as u64)),
            ("done", Json::Bool(self.done)),
            ("last_seq", Json::UInt(self.last_seq)),
        ])
    }

    fn from_json(v: &Json) -> Result<CkpSession, ApiError> {
        if v.get("op").and_then(Json::as_str) != Some("ckp-session") {
            return Err(ApiError::bad_request("not a ckp-session frame"));
        }
        let token = v
            .get("token")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("ckp-session missing 'token'"))?
            .to_string();
        let rounds = v
            .get("rounds")
            .and_then(Json::as_arr)
            .ok_or_else(|| ApiError::bad_request("ckp-session missing 'rounds'"))?
            .iter()
            .map(RoundRec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        // Pre-batch checkpoints hold a scalar (or null) pending seed;
        // current ones hold the pending batch as an array.
        let pending = match v.get("pending") {
            None | Some(Json::Null) => Vec::new(),
            Some(Json::Arr(_)) => nodes_field(v, "pending")?,
            Some(p) => vec![p
                .as_u64()
                .and_then(|n| Node::try_from(n).ok())
                .ok_or_else(|| ApiError::bad_request("ckp-session bad 'pending'"))?],
        };
        Ok(CkpSession {
            token,
            id: v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_request("ckp-session missing 'id'"))?,
            req: CreateSessionReq::from_json(
                v.get("req")
                    .ok_or_else(|| ApiError::bad_request("ckp-session missing 'req'"))?,
            )?,
            rounds,
            pending,
            pending_k: v.get("pending_k").and_then(Json::as_u64).unwrap_or(1) as usize,
            done: v
                .get("done")
                .and_then(Json::as_bool)
                .ok_or_else(|| ApiError::bad_request("ckp-session missing 'done'"))?,
            last_seq: v.get("last_seq").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// The transition sequence that rebuilds this session through
    /// [`SessionManager::recover`] — the same records the journal would
    /// have held. Rounds synthesize uniformly as batch records: a
    /// single-seed round is a batch round of `k = 1`, byte-identical by
    /// the stepper contract.
    fn synthesize(&self) -> Vec<Record> {
        let mut records = Vec::with_capacity(2 + self.rounds.len() * 2);
        records.push(Record::Create {
            id: self.id,
            token: self.token.clone(),
            req: self.req.clone(),
        });
        for round in &self.rounds {
            records.push(Record::NextBatch {
                token: self.token.clone(),
                seeds: round.req.seeds().to_vec(),
                k: round.k,
                done: false,
            });
            records.push(Record::ObserveBatch {
                token: self.token.clone(),
                req: round.req.clone(),
            });
        }
        if !self.pending.is_empty() {
            records.push(Record::NextBatch {
                token: self.token.clone(),
                seeds: self.pending.clone(),
                k: self.pending_k,
                done: false,
            });
        }
        if self.done {
            records.push(Record::NextBatch {
                token: self.token.clone(),
                seeds: vec![],
                k: self.pending_k.max(1),
                done: true,
            });
        }
        records
    }
}

// ---------------------------------------------------------------------------
// Open-time report

/// What [`Journal::open_with`] found on disk — surfaced so the server can
/// count torn tails, log offsets, and advance its id counter.
#[derive(Debug, Clone, Default)]
pub struct OpenInfo {
    /// Truncation/corruption events: `(file, byte offset of the tear)`.
    pub torn: Vec<(String, u64)>,
    /// Sealed `.old.*` segments replayed (leftovers of an interrupted
    /// checkpoint; the next successful checkpoint retires them).
    pub segments_replayed: u64,
    /// Sessions loaded from the checkpoint (0 when none exists).
    pub checkpoint_sessions: u64,
    /// The checkpoint's high-water seq (0 when none exists).
    pub checkpoint_seq: u64,
    /// Session-id counter floor recorded in the checkpoint head; the
    /// manager must advance past it so recovered-then-deleted sessions
    /// can never recycle a token.
    pub next_id_floor: u64,
}

/// One parsed segment file.
struct ParsedSegment {
    /// `(seq, record)` in append order; v1 frames carry seq 0.
    records: Vec<(u64, Record)>,
    /// Byte offset just past the last intact frame.
    good_len: u64,
    /// Total byte length scanned (`> good_len` means a torn tail).
    total_len: u64,
    /// Whether the segment uses the v1 (seq-less) frame layout.
    v1: bool,
}

/// Walks a segment's frames, stopping at the first torn or corrupt one.
/// Errors only on a bad magic.
fn parse_segment(bytes: &[u8]) -> io::Result<ParsedSegment> {
    let v1 = if bytes.len() >= 8 && &bytes[..8] == MAGIC_V2 {
        false
    } else if bytes.len() >= 8 && &bytes[..8] == MAGIC_V1 {
        true
    } else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an ATPMJNL1/ATPMJNL2 journal (bad magic)",
        ));
    };
    let head = if v1 { 8usize } else { 16usize };
    let mut records = Vec::new();
    let mut offset = 8usize;
    while let Some(header) = bytes.get(offset..offset + head) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD {
            break;
        }
        // v2 checksums cover seq ++ payload (contiguous on disk), so a
        // flipped sequence number is corruption, not a silent replay skew.
        let Some(checked) = bytes.get(offset + 8..offset + head + len) else {
            break;
        };
        if crc32(checked) != crc {
            break;
        }
        let seq = if v1 {
            0
        } else {
            u64::from_le_bytes(checked[0..8].try_into().unwrap())
        };
        let payload = &checked[if v1 { 0 } else { 8 }..];
        let parsed = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| Json::parse(text).ok())
            .and_then(|json| Record::from_json(&json).ok());
        let Some(record) = parsed else {
            // A record that checksums but doesn't parse is corruption
            // (or a future format); treat it as the tail boundary.
            break;
        };
        records.push((seq, record));
        offset += head + len;
    }
    Ok(ParsedSegment {
        records,
        good_len: offset as u64,
        total_len: bytes.len() as u64,
        v1,
    })
}

/// A parsed `ATPMCKP1` checkpoint.
struct ParsedCkp {
    max_seq: u64,
    next_id: u64,
    sessions: Vec<CkpSession>,
    /// Byte offset of a torn/corrupt tail, if any frame failed its check.
    torn_at: Option<u64>,
}

/// Parses a checkpoint file. `None` when the magic or head frame is
/// unusable (the checkpoint contributes nothing; tail segments still
/// replay). Broken session frames mark the tail: the sessions before them
/// load, everything after is discarded — never a panic.
fn parse_checkpoint(bytes: &[u8]) -> Option<ParsedCkp> {
    if bytes.len() < 8 || &bytes[..8] != CKP_MAGIC {
        return None;
    }
    let mut offset = 8usize;
    let mut frames = Vec::new();
    let mut torn_at = None;
    while let Some(header) = bytes.get(offset..offset + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD {
            break;
        }
        let Some(payload) = bytes.get(offset + 8..offset + 8 + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(json) = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| Json::parse(text).ok())
        else {
            break;
        };
        frames.push(json);
        offset += 8 + len;
    }
    if (offset as u64) < bytes.len() as u64 {
        torn_at = Some(offset as u64);
    }
    let mut frames = frames.into_iter();
    let head = frames.next()?;
    if head.get("op").and_then(Json::as_str) != Some("ckp-head") {
        return None;
    }
    let max_seq = head.get("max_seq").and_then(Json::as_u64)?;
    let next_id = head.get("next_id").and_then(Json::as_u64).unwrap_or(0);
    let mut sessions = Vec::new();
    for frame in frames {
        match CkpSession::from_json(&frame) {
            Ok(session) => sessions.push(session),
            // A session frame that checksums but doesn't parse is
            // corruption; it and everything after it are untrustworthy.
            Err(_) => break,
        }
    }
    Some(ParsedCkp {
        max_seq,
        next_id,
        sessions,
        torn_at,
    })
}

// ---------------------------------------------------------------------------
// The journal

/// The active segment: the open file plus the append high-water mark.
struct ActiveSegment {
    file: File,
    /// Seq of the last record appended (globally monotonic across
    /// rotations and restarts).
    appended_seq: u64,
    /// Legacy v1 segment — appends keep the seq-less frame layout so the
    /// file stays self-consistent.
    v1: bool,
}

/// Group-commit state: the durable high-water mark plus leader election.
struct CommitState {
    durable_seq: u64,
    /// A committer is currently inside the window/fsync.
    leader: bool,
}

/// An open journal, positioned for appends.
pub struct Journal {
    path: PathBuf,
    policy: FsyncPolicy,
    io: Arc<dyn JournalIo>,
    active: Mutex<ActiveSegment>,
    commit: Mutex<CommitState>,
    commit_cv: Condvar,
    /// Set on any write/fsync failure: the OS may have dropped dirty
    /// pages, so every later operation fails fast instead of silently
    /// acking writes that would not survive a crash.
    poisoned: AtomicBool,
    /// Active segment size in bytes (lock-free read for `/healthz`).
    bytes: AtomicU64,
    /// Segment files on disk (active + sealed `.old.*`).
    segments: AtomicU64,
    /// High-water seq of the last durable checkpoint (0 when none).
    last_ckp_seq: AtomicU64,
    /// Fsync latency sink, bound by the server's metrics registry.
    fsync_hist: OnceLock<Arc<atpm_obs::Histogram>>,
    open_info: OpenInfo,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual: the boxed `JournalIo` carries no `Debug` bound.
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("poisoned", &self.poisoned())
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens the journal at `path` with the legacy defaults: real file
    /// I/O and shutdown-only fsync. See [`Journal::open_with`].
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Vec<Record>)> {
        Journal::open_with(path, FsyncPolicy::Shutdown, Arc::new(RealIo))
    }

    /// Opens (creating if absent) the journal at `path`, loading the full
    /// recovery sequence: checkpoint sessions first (synthesized back into
    /// transition records), then leftover sealed segments, then the active
    /// segment — skipping tail records a checkpointed session has already
    /// folded in. The active segment is truncated at the first torn or
    /// corrupt offset; every truncation is reported in [`OpenInfo`].
    pub fn open_with(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
        io: Arc<dyn JournalIo>,
    ) -> io::Result<(Journal, Vec<Record>)> {
        let path = path.as_ref().to_path_buf();
        let mut info = OpenInfo::default();
        let mut records: Vec<Record> = Vec::new();
        let mut last_seq_by_token: HashMap<String, u64> = HashMap::new();
        let mut max_seq = 0u64;

        // 1. Checkpoint, if present.
        let ckp_path = ckp_path(&path);
        if let Ok(bytes) = std::fs::read(&ckp_path) {
            if let Some(ckp) = parse_checkpoint(&bytes) {
                if let Some(offset) = ckp.torn_at {
                    info.torn.push((ckp_path.display().to_string(), offset));
                }
                info.checkpoint_sessions = ckp.sessions.len() as u64;
                info.checkpoint_seq = ckp.max_seq;
                info.next_id_floor = ckp.next_id;
                max_seq = max_seq.max(ckp.max_seq);
                for session in &ckp.sessions {
                    last_seq_by_token.insert(session.token.clone(), session.last_seq);
                    max_seq = max_seq.max(session.last_seq);
                    records.extend(session.synthesize());
                }
            }
        }

        // Skip rule: a record at or below a checkpointed session's
        // `last_seq` is already reflected in its synthesized history.
        // (v1 frames read back as seq 0 and only survive in sealed
        // segments, which by construction predate the serialization.)
        let keep = |seq: u64, record: &Record| -> bool {
            let token = match record {
                Record::Create { token, .. }
                | Record::Next { token, .. }
                | Record::Observe { token, .. }
                | Record::NextBatch { token, .. }
                | Record::ObserveBatch { token, .. }
                | Record::Delete { token } => token,
            };
            last_seq_by_token.get(token).is_none_or(|last| seq > *last)
        };

        // 2. Sealed segments left by an interrupted checkpoint, oldest
        // first. They are replayed but never truncated — the next
        // successful checkpoint deletes them whole.
        for (_, old_path) in list_old_segments(&path) {
            let bytes = std::fs::read(&old_path)?;
            let Ok(parsed) = parse_segment(&bytes) else {
                info.torn.push((old_path.display().to_string(), 0));
                continue;
            };
            if parsed.good_len < parsed.total_len {
                info.torn
                    .push((old_path.display().to_string(), parsed.good_len));
            }
            info.segments_replayed += 1;
            for (seq, record) in parsed.records {
                max_seq = max_seq.max(seq);
                if keep(seq, &record) {
                    records.push(record);
                }
            }
        }

        // 3. The active segment, truncated at the first bad frame.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (good_len, v1) = if bytes.is_empty() {
            io.write_all(&file, MAGIC_V2)?;
            file.flush()?;
            (8u64, false)
        } else {
            let parsed = parse_segment(&bytes)?;
            if parsed.good_len < parsed.total_len {
                info.torn
                    .push((path.display().to_string(), parsed.good_len));
                file.set_len(parsed.good_len)?;
            }
            file.seek(SeekFrom::Start(parsed.good_len))?;
            for (seq, record) in parsed.records {
                max_seq = max_seq.max(seq);
                if keep(seq, &record) {
                    records.push(record);
                }
            }
            (parsed.good_len, parsed.v1)
        };

        let segments = 1 + info.segments_replayed;
        let journal = Journal {
            path,
            policy,
            io,
            active: Mutex::new(ActiveSegment {
                file,
                appended_seq: max_seq,
                v1,
            }),
            commit: Mutex::new(CommitState {
                durable_seq: max_seq,
                leader: false,
            }),
            commit_cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
            bytes: AtomicU64::new(good_len),
            segments: AtomicU64::new(segments),
            last_ckp_seq: AtomicU64::new(info.checkpoint_seq),
            fsync_hist: OnceLock::new(),
            open_info: info,
        };
        Ok((journal, records))
    }

    /// What open-time recovery found (torn tails, checkpoint stats).
    pub fn open_info(&self) -> &OpenInfo {
        &self.open_info
    }

    /// The configured durability policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Routes fsync latencies into `hist` (first binding wins).
    pub fn bind_fsync_histogram(&self, hist: Arc<atpm_obs::Histogram>) {
        let _ = self.fsync_hist.set(hist);
    }

    /// True once a durability failure has been observed; every later
    /// append/commit/sync fails fast.
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Active segment size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Segment files on disk (active + sealed).
    pub fn segments(&self) -> u64 {
        self.segments.load(Ordering::Relaxed)
    }

    /// High-water seq of the last durable checkpoint (0 when none).
    pub fn last_checkpoint_seq(&self) -> u64 {
        self.last_ckp_seq.load(Ordering::Relaxed)
    }

    fn poison(&self) -> io::Error {
        self.poisoned.store(true, Ordering::Release);
        // Anyone parked on the commit barrier must wake and observe it.
        self.commit_cv.notify_all();
        poisoned_error()
    }

    /// Appends one record, flushed to the OS before returning so a
    /// process crash cannot lose it, and returns its commit seq. The
    /// record is *not* durable against power loss until
    /// [`Journal::commit`] passes that seq.
    pub fn append(&self, record: &Record) -> io::Result<u64> {
        if self.poisoned() {
            return Err(poisoned_error());
        }
        let payload = record.to_json().encode();
        let payload = payload.as_bytes();
        let mut active = self.active.lock().unwrap_or_else(|p| p.into_inner());
        let seq = active.appended_seq + 1;
        let frame = if active.v1 {
            let mut frame = Vec::with_capacity(8 + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(payload).to_le_bytes());
            frame.extend_from_slice(payload);
            frame
        } else {
            encode_frame_v2(seq, payload)
        };
        // A failed or torn append leaves an unparseable frame mid-file;
        // appending more records after it would strand them past the
        // recovery truncation point. Poison instead of pretending.
        if let Err(e) = retry_eintr(|| self.io.write_all(&active.file, &frame)) {
            drop(active);
            self.poison();
            return Err(e);
        }
        if let Err(e) = active.file.flush() {
            drop(active);
            self.poison();
            return Err(e);
        }
        active.appended_seq = seq;
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(seq)
    }

    /// Blocks until the record at `seq` is durable under the configured
    /// policy. Under `group:MS`, the first committer becomes the leader:
    /// it sleeps out the window, issues one fsync covering every record
    /// appended meanwhile, and wakes the group. `always` is a zero-width
    /// window; `shutdown` returns immediately (durability deferred).
    pub fn commit(&self, seq: u64) -> io::Result<()> {
        let window_ms = match self.policy {
            FsyncPolicy::Shutdown => return Ok(()),
            FsyncPolicy::Group(ms) => ms,
            FsyncPolicy::Always => 0,
        };
        loop {
            let mut commit = self.commit.lock().unwrap_or_else(|p| p.into_inner());
            if commit.durable_seq >= seq {
                return Ok(());
            }
            if self.poisoned() {
                return Err(poisoned_error());
            }
            if commit.leader {
                // A leader is already in flight; park until it reports.
                let wait = Duration::from_millis(window_ms.saturating_mul(4).max(50));
                let (guard, _) = self
                    .commit_cv
                    .wait_timeout(commit, wait)
                    .unwrap_or_else(|p| p.into_inner());
                drop(guard);
                continue;
            }
            commit.leader = true;
            drop(commit);
            if window_ms > 0 {
                std::thread::sleep(Duration::from_millis(window_ms));
            }
            let result = self.fsync_active();
            let mut commit = self.commit.lock().unwrap_or_else(|p| p.into_inner());
            commit.leader = false;
            match result {
                Ok(appended) => {
                    commit.durable_seq = commit.durable_seq.max(appended);
                    let durable = commit.durable_seq;
                    drop(commit);
                    self.commit_cv.notify_all();
                    if durable >= seq {
                        return Ok(());
                    }
                }
                Err(e) => {
                    drop(commit);
                    self.poison();
                    return Err(e);
                }
            }
        }
    }

    /// Fsyncs the active segment under the file lock, returning the
    /// append high-water mark the barrier covers.
    fn fsync_active(&self) -> io::Result<u64> {
        let active = self.active.lock().unwrap_or_else(|p| p.into_inner());
        let appended = active.appended_seq;
        let t0 = Instant::now();
        retry_eintr(|| self.io.fsync(&active.file))?;
        if let Some(hist) = self.fsync_hist.get() {
            hist.record_duration(t0.elapsed());
        }
        Ok(appended)
    }

    /// Full durability barrier: fsync everything appended so far (used at
    /// graceful shutdown, and by rotation to seal a segment).
    pub fn sync(&self) -> io::Result<()> {
        if self.poisoned() {
            return Err(poisoned_error());
        }
        match self.fsync_active() {
            Ok(appended) => {
                let mut commit = self.commit.lock().unwrap_or_else(|p| p.into_inner());
                commit.durable_seq = commit.durable_seq.max(appended);
                drop(commit);
                self.commit_cv.notify_all();
                Ok(())
            }
            Err(e) => {
                self.poison();
                Err(e)
            }
        }
    }

    /// Seals the active segment as `<path>.old.<seq>` (fsynced first, so
    /// the sealed file is fully durable) and starts a fresh empty
    /// segment. New appends land in the fresh segment with the seq
    /// counter continuing uninterrupted.
    pub fn rotate(&self) -> io::Result<()> {
        if self.poisoned() {
            return Err(poisoned_error());
        }
        let mut active = self.active.lock().unwrap_or_else(|p| p.into_inner());
        // Seal: everything in the old segment becomes durable before the
        // file stops being the append target.
        let t0 = Instant::now();
        if let Err(e) = retry_eintr(|| self.io.fsync(&active.file)) {
            drop(active);
            self.poison();
            return Err(e);
        }
        if let Some(hist) = self.fsync_hist.get() {
            hist.record_duration(t0.elapsed());
        }
        let sealed_seq = active.appended_seq;
        let sealed_path = old_segment_path(&self.path, sealed_seq);
        // Rename failure before any new file exists is recoverable: the
        // journal keeps appending to the unrotated segment.
        self.io.rename(&self.path, &sealed_path)?;
        let fresh = match self.io.create(&self.path) {
            Ok(file) => file,
            Err(e) => {
                // Roll back: restore the sealed file as the active path.
                // If even that fails there is no append target left.
                if self.io.rename(&sealed_path, &self.path).is_err() {
                    drop(active);
                    self.poison();
                }
                return Err(e);
            }
        };
        if let Err(e) = self.io.write_all(&fresh, MAGIC_V2).and_then(|()| {
            let mut f = &fresh;
            f.flush()
        }) {
            // The fresh segment has no valid magic; nothing appended to
            // it would survive recovery.
            drop(active);
            self.poison();
            return Err(e);
        }
        active.file = fresh;
        active.v1 = false;
        self.bytes.store(8, Ordering::Relaxed);
        self.segments.fetch_add(1, Ordering::Relaxed);
        drop(active);
        // The sealed segment is fsynced: everything up to `sealed_seq`
        // is durable, so parked committers can be released.
        let mut commit = self.commit.lock().unwrap_or_else(|p| p.into_inner());
        commit.durable_seq = commit.durable_seq.max(sealed_seq);
        drop(commit);
        self.commit_cv.notify_all();
        Ok(())
    }

    /// Writes an `ATPMCKP1` checkpoint covering `sessions` (temp file →
    /// fsync → atomic rename → directory fsync), then deletes every
    /// sealed segment — their records are all reflected in the
    /// checkpoint. Call [`Journal::rotate`] first so the active segment
    /// holds only post-serialization records.
    pub fn write_checkpoint(&self, next_id: u64, sessions: &[CkpSession]) -> io::Result<()> {
        let max_seq = {
            let active = self.active.lock().unwrap_or_else(|p| p.into_inner());
            active.appended_seq
        };
        let mut buf = Vec::with_capacity(1024);
        buf.extend_from_slice(CKP_MAGIC);
        let head = Json::obj([
            ("op", Json::Str("ckp-head".into())),
            ("max_seq", Json::UInt(max_seq)),
            ("next_id", Json::UInt(next_id)),
            ("sessions", Json::UInt(sessions.len() as u64)),
        ]);
        push_ckp_frame(&mut buf, &head);
        for session in sessions {
            push_ckp_frame(&mut buf, &session.to_json());
        }
        let ckp = ckp_path(&self.path);
        let tmp = ckp_tmp_path(&self.path);
        // A checkpoint failure is not a journal failure: the segments it
        // would have retired stay on disk and replay at the next open, so
        // errors here propagate without poisoning.
        let file = self.io.create(&tmp)?;
        retry_eintr(|| self.io.write_all(&file, &buf))?;
        retry_eintr(|| self.io.fsync(&file))?;
        self.io.rename(&tmp, &ckp)?;
        // Make the rename itself durable before retiring old segments.
        if let Ok(dir) = File::open(parent_dir(&self.path)) {
            retry_eintr(|| self.io.fsync(&dir))?;
        }
        self.last_ckp_seq.store(max_seq, Ordering::Relaxed);
        // Retention: every sealed segment predates the checkpoint.
        // Removal failures only delay retirement until the next round.
        let mut remaining = 1u64;
        for (_, old_path) in list_old_segments(&self.path) {
            if self.io.remove(&old_path).is_err() {
                remaining += 1;
            }
        }
        self.segments.store(remaining, Ordering::Relaxed);
        Ok(())
    }
}

/// The sentinel error every operation on a poisoned journal returns.
fn poisoned_error() -> io::Error {
    io::Error::other("journal poisoned: an earlier durability failure may have lost writes")
}

fn encode_frame_v2(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(16 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut checked = Vec::with_capacity(8 + payload.len());
    checked.extend_from_slice(&seq.to_le_bytes());
    checked.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(&checked).to_le_bytes());
    frame.extend_from_slice(&checked);
    frame
}

fn push_ckp_frame(buf: &mut Vec<u8>, json: &Json) {
    let payload = json.encode();
    let payload = payload.as_bytes();
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

fn ckp_path(path: &Path) -> PathBuf {
    append_ext(path, ".ckp")
}

fn ckp_tmp_path(path: &Path) -> PathBuf {
    append_ext(path, ".ckp.tmp")
}

fn old_segment_path(path: &Path, seq: u64) -> PathBuf {
    append_ext(path, &format!(".old.{seq:020}"))
}

fn append_ext(path: &Path, ext: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(ext);
    path.with_file_name(name)
}

fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Sealed segments next to `path`, sorted by seal seq ascending.
fn list_old_segments(path: &Path) -> Vec<(u64, PathBuf)> {
    let prefix = format!(
        "{}.old.",
        path.file_name().unwrap_or_default().to_string_lossy()
    );
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(parent_dir(path)) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(suffix) = name.strip_prefix(&prefix) {
            if let Ok(seq) = suffix.parse::<u64>() {
                found.push((seq, entry.path()));
            }
        }
    }
    found.sort();
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PolicySpec;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("atpm-journal-{tag}-{}", std::process::id()));
        p
    }

    fn scrub(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(ckp_path(path));
        let _ = std::fs::remove_file(ckp_tmp_path(path));
        for (_, old) in list_old_segments(path) {
            let _ = std::fs::remove_file(old);
        }
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Create {
                id: 1,
                token: "s00000001".into(),
                req: CreateSessionReq {
                    snapshot: "g".into(),
                    policy: PolicySpec::Ars { prob: 0.5, seed: 9 },
                    world_seed: 42,
                },
            },
            Record::Next {
                token: "s00000001".into(),
                seeds: vec![17],
                done: false,
            },
            Record::Observe {
                token: "s00000001".into(),
                req: ObserveReq::Report {
                    seed: 17,
                    activated: vec![17, 4],
                },
            },
            Record::NextBatch {
                token: "s00000001".into(),
                seeds: vec![3, 8],
                k: 4,
                done: false,
            },
            Record::ObserveBatch {
                token: "s00000001".into(),
                req: ObserveBatchReq::Report {
                    seeds: vec![3, 8],
                    activated: vec![3, 8, 11],
                },
            },
            Record::Next {
                token: "s00000001".into(),
                seeds: vec![],
                done: true,
            },
            Record::Delete {
                token: "s00000001".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_json() {
        for record in sample_records() {
            let encoded = record.to_json().encode();
            let parsed = Record::from_json(&Json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(parsed, record);
        }
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let path = temp_path("roundtrip");
        scrub(&path);
        let (journal, existing) = Journal::open(&path).unwrap();
        assert!(existing.is_empty());
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let (journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, sample_records());
        assert!(
            journal.open_info().torn.is_empty(),
            "clean reopen reports no torn tail"
        );
        scrub(&path);
    }

    #[test]
    fn torn_tail_is_truncated_at_the_checksum_boundary() {
        let path = temp_path("torn");
        scrub(&path);
        let (journal, _) = Journal::open(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        // Tear the final record mid-payload, as a crash mid-write would.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (journal, replayed) = Journal::open(&path).unwrap();
        let all = sample_records();
        assert_eq!(replayed, all[..all.len() - 1]);
        // The tear is reported, with its byte offset, not swallowed.
        assert_eq!(journal.open_info().torn.len(), 1);
        let (file, offset) = &journal.open_info().torn[0];
        assert!(file.contains("atpm-journal-torn"));
        assert!(*offset > 8, "tear offset is past the magic: {offset}");
        // The torn bytes are gone: appending resumes from the boundary.
        journal.append(all.last().unwrap()).unwrap();
        drop(journal);
        let (_journal, healed) = Journal::open(&path).unwrap();
        assert_eq!(healed, all);
        scrub(&path);
    }

    #[test]
    fn corrupt_checksum_marks_the_tail() {
        let path = temp_path("crc");
        scrub(&path);
        let (journal, _) = Journal::open(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the second record: it and everything
        // after it must be discarded (a bad middle means an untrustworthy
        // tail), while the first record survives. v2 frames carry a
        // 16-byte header (len + crc + seq).
        let first_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let second_payload_start = 8 + 16 + first_len + 16;
        bytes[second_payload_start + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, sample_records()[..1]);
        scrub(&path);
    }

    #[test]
    fn v1_segments_still_replay() {
        let path = temp_path("v1compat");
        scrub(&path);
        // Hand-write a legacy segment: v1 magic, 8-byte frame headers.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        for record in sample_records() {
            let payload = record.to_json().encode();
            let payload = payload.as_bytes();
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(payload).to_le_bytes());
            bytes.extend_from_slice(payload);
        }
        std::fs::write(&path, &bytes).unwrap();
        let (journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, sample_records());
        // Appends to a v1 file keep the v1 frame layout, so the mixed
        // file stays parseable end to end.
        journal.append(&sample_records()[0]).unwrap();
        drop(journal);
        let (_journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), sample_records().len() + 1);
        scrub(&path);
    }

    #[test]
    fn bad_magic_is_refused_not_clobbered() {
        let path = temp_path("magic");
        scrub(&path);
        std::fs::write(&path, b"definitely not a journal").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The file was left alone.
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a journal");
        scrub(&path);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parses_and_renders() {
        assert_eq!(FsyncPolicy::parse("shutdown"), Ok(FsyncPolicy::Shutdown));
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("group:5"), Ok(FsyncPolicy::Group(5)));
        assert_eq!(FsyncPolicy::parse("group:0"), Ok(FsyncPolicy::Group(0)));
        assert!(FsyncPolicy::parse("group:x").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Group(5));
        for p in ["shutdown", "always", "group:7"] {
            assert_eq!(FsyncPolicy::parse(p).unwrap().render(), p);
        }
    }

    #[test]
    fn group_commit_acks_only_durable_records() {
        let path = temp_path("group");
        scrub(&path);
        let (journal, _) =
            Journal::open_with(&path, FsyncPolicy::Group(1), Arc::new(RealIo)).unwrap();
        let journal = Arc::new(journal);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let journal = journal.clone();
            handles.push(std::thread::spawn(move || {
                for record in sample_records() {
                    let seq = journal.append(&record).unwrap();
                    journal.commit(seq).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!journal.poisoned());
        drop(journal);
        let (_journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 4 * sample_records().len());
        scrub(&path);
    }

    #[test]
    fn failed_fsync_poisons_the_journal() {
        let path = temp_path("fsyncgate");
        scrub(&path);
        let io = Arc::new(FaultIo::new().fail(IoSite::Fsync, 1, atpm_net::fault::ENOSPC));
        let (journal, _) = Journal::open_with(&path, FsyncPolicy::Always, io).unwrap();
        let seq = journal.append(&sample_records()[0]).unwrap();
        let err = journal.commit(seq).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(atpm_net::fault::ENOSPC));
        assert!(journal.poisoned(), "a failed fsync must poison");
        // No retry-and-pretend: every later operation fails fast.
        assert!(journal.append(&sample_records()[0]).is_err());
        assert!(journal.commit(seq).is_err());
        assert!(journal.sync().is_err());
        assert!(journal.rotate().is_err());
        scrub(&path);
    }

    #[test]
    fn short_write_poisons_and_recovery_truncates_the_torn_frame() {
        let path = temp_path("shortwrite");
        scrub(&path);
        // Fault the second record's write: 5 bytes of frame land.
        let io = Arc::new(FaultIo::new().short_write(3, 5));
        let (journal, _) = Journal::open_with(&path, FsyncPolicy::Shutdown, io).unwrap();
        journal.append(&sample_records()[0]).unwrap();
        assert!(journal.append(&sample_records()[1]).is_err());
        assert!(journal.poisoned(), "a torn append must poison");
        drop(journal);
        let (journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, sample_records()[..1], "torn frame truncated");
        assert_eq!(journal.open_info().torn.len(), 1);
        scrub(&path);
    }

    #[test]
    fn eintr_is_retried_transparently() {
        let path = temp_path("eintr");
        scrub(&path);
        let io = Arc::new(
            FaultIo::new()
                .fail(IoSite::Write, 2, atpm_net::fault::EINTR)
                .fail(IoSite::Fsync, 1, atpm_net::fault::EINTR),
        );
        let (journal, _) = Journal::open_with(&path, FsyncPolicy::Always, io).unwrap();
        let seq = journal.append(&sample_records()[0]).unwrap();
        journal.commit(seq).unwrap();
        assert!(!journal.poisoned(), "EINTR is transient, not poison");
        assert!(injected_total(IoSite::Write) >= 1);
        scrub(&path);
    }

    #[test]
    fn rotation_seals_and_recovery_spans_segments() {
        let path = temp_path("rotate");
        scrub(&path);
        let (journal, _) =
            Journal::open_with(&path, FsyncPolicy::Shutdown, Arc::new(RealIo)).unwrap();
        let all = sample_records();
        journal.append(&all[0]).unwrap();
        journal.append(&all[1]).unwrap();
        journal.rotate().unwrap();
        assert_eq!(journal.segments(), 2);
        journal.append(&all[2]).unwrap();
        drop(journal);
        assert_eq!(list_old_segments(&path).len(), 1);
        let (journal, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, all[..3], "sealed + active segments replay");
        assert_eq!(journal.open_info().segments_replayed, 1);
        scrub(&path);
    }

    #[test]
    fn checkpoint_retires_sealed_segments_and_reloads() {
        let path = temp_path("ckp");
        scrub(&path);
        let (journal, _) =
            Journal::open_with(&path, FsyncPolicy::Shutdown, Arc::new(RealIo)).unwrap();
        let all = sample_records();
        journal.append(&all[0]).unwrap();
        journal.append(&all[1]).unwrap();
        journal.rotate().unwrap();
        let session = CkpSession {
            token: "s00000001".into(),
            id: 1,
            req: CreateSessionReq {
                snapshot: "g".into(),
                policy: PolicySpec::Ars { prob: 0.5, seed: 9 },
                world_seed: 42,
            },
            rounds: vec![],
            pending: vec![17],
            pending_k: 1,
            done: false,
            last_seq: 2,
        };
        journal
            .write_checkpoint(7, std::slice::from_ref(&session))
            .unwrap();
        assert_eq!(journal.segments(), 1, "sealed segments retired");
        assert!(list_old_segments(&path).is_empty());
        assert_eq!(journal.last_checkpoint_seq(), 2);
        // Post-checkpoint tail.
        journal.append(&all[2]).unwrap();
        drop(journal);
        let (journal, replayed) = Journal::open(&path).unwrap();
        // Synthesized: Create + pending NextBatch; then the tail Observe.
        assert_eq!(
            replayed,
            vec![
                Record::Create {
                    id: 1,
                    token: "s00000001".into(),
                    req: session.req.clone(),
                },
                Record::NextBatch {
                    token: "s00000001".into(),
                    seeds: vec![17],
                    k: 1,
                    done: false,
                },
                all[2].clone(),
            ]
        );
        assert_eq!(journal.open_info().checkpoint_sessions, 1);
        assert_eq!(journal.open_info().next_id_floor, 7);
        assert_eq!(journal.open_info().checkpoint_seq, 2);
        scrub(&path);
    }

    #[test]
    fn checkpoint_skips_tail_records_already_folded_in() {
        let path = temp_path("ckpskip");
        scrub(&path);
        let (journal, _) =
            Journal::open_with(&path, FsyncPolicy::Shutdown, Arc::new(RealIo)).unwrap();
        let all = sample_records();
        // Records land in the *active* segment with seqs 1..=3, then the
        // checkpoint claims the session has folded in everything up to
        // seq 2 — as happens when appends race the serialization scan.
        journal.append(&all[0]).unwrap();
        journal.append(&all[1]).unwrap();
        journal.append(&all[2]).unwrap();
        let session = CkpSession {
            token: "s00000001".into(),
            id: 1,
            req: CreateSessionReq {
                snapshot: "g".into(),
                policy: PolicySpec::Ars { prob: 0.5, seed: 9 },
                world_seed: 42,
            },
            rounds: vec![],
            pending: vec![17],
            pending_k: 1,
            done: false,
            last_seq: 2,
        };
        journal.write_checkpoint(2, &[session]).unwrap();
        drop(journal);
        let (_journal, replayed) = Journal::open(&path).unwrap();
        // Synthesized Create + pending Next, then only the seq-3 tail
        // record — seqs 1 and 2 are already folded into the checkpoint.
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[2], all[2]);
        scrub(&path);
    }

    #[test]
    fn ckp_session_json_round_trips() {
        let session = CkpSession {
            token: "sdeadbeef".into(),
            id: 12,
            req: CreateSessionReq {
                snapshot: "g".into(),
                policy: PolicySpec::Hatp {
                    eps_threshold: Some(0.25),
                    max_theta: Some(1 << 12),
                    seed: 3,
                    threads: 1,
                },
                world_seed: 8,
            },
            rounds: vec![
                RoundRec {
                    k: 1,
                    req: ObserveReq::Simulate { seed: 4 }.into(),
                },
                RoundRec {
                    k: 4,
                    req: ObserveBatchReq::Report {
                        seeds: vec![9, 13],
                        activated: vec![9, 2, 5, 13],
                    },
                },
            ],
            pending: vec![],
            pending_k: 4,
            done: true,
            last_seq: 31,
        };
        let encoded = session.to_json().encode();
        let parsed = CkpSession::from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(parsed, session);
    }

    #[test]
    fn pre_batch_ckp_session_shape_still_parses() {
        // A checkpoint written before batched seeding: rounds are bare
        // ObserveReq objects and 'pending' is a scalar seed.
        let old = Json::obj([
            ("op", Json::Str("ckp-session".into())),
            ("token", Json::Str("sfeedface".into())),
            ("id", Json::UInt(3)),
            (
                "req",
                CreateSessionReq {
                    snapshot: "g".into(),
                    policy: PolicySpec::DeployAll,
                    world_seed: 6,
                }
                .to_json(),
            ),
            (
                "rounds",
                Json::Arr(vec![ObserveReq::Simulate { seed: 4 }.to_json()]),
            ),
            ("pending", Json::UInt(9)),
            ("done", Json::Bool(false)),
            ("last_seq", Json::UInt(5)),
        ]);
        let parsed = CkpSession::from_json(&Json::parse(&old.encode()).unwrap()).unwrap();
        assert_eq!(parsed.pending, vec![9]);
        assert_eq!(parsed.pending_k, 1, "legacy rounds replay at k = 1");
        assert_eq!(
            parsed.rounds,
            vec![RoundRec {
                k: 1,
                req: ObserveBatchReq::Simulate { seeds: vec![4] },
            }]
        );
        // Legacy pending synthesizes as a batch-of-one NextBatch.
        let records = parsed.synthesize();
        assert_eq!(
            records.last(),
            Some(&Record::NextBatch {
                token: "sfeedface".into(),
                seeds: vec![9],
                k: 1,
                done: false,
            })
        );
    }
}
