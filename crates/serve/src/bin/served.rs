//! `atpm-served` — run the adaptive-seeding service standalone.
//!
//! ```text
//! cargo run -p atpm-serve --release --bin atpm-served -- [flags]
//!
//! flags: --addr HOST:PORT   bind address        (default 127.0.0.1:8080)
//!        --workers N        worker threads      (default 4)
//!        --preset NAME      preload a snapshot from a Table II preset
//!        --graph PATH       ...or from an edge-list/ATPMGRF1 file
//!        --name NAME        snapshot store key   (default "default")
//!        --scale F --k N --rr-theta N --seed S   snapshot knobs
//! ```
//!
//! Without `--preset`/`--graph` the server starts with an empty store;
//! load snapshots over the API (`POST /snapshots`). Runs until killed.

use atpm_serve::protocol::{SnapshotReq, SnapshotSource};
use atpm_serve::server::{AppState, ServeConfig, Server};
use atpm_serve::snapshot::Snapshot;

struct Args {
    cfg: ServeConfig,
    snapshot: Option<SnapshotReq>,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:8080".into(),
        workers: 4,
    };
    let mut name = "default".to_string();
    let mut source: Option<SnapshotSource> = None;
    let (mut scale, mut k, mut rr_theta, mut seed) = (0.05f64, 8usize, 10_000usize, 7u64);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value_of("--addr")?,
            "--workers" => {
                cfg.workers = value_of("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--preset" => {
                source = Some(SnapshotSource::Preset {
                    dataset: value_of("--preset")?,
                    scale,
                });
            }
            "--graph" => {
                source = Some(SnapshotSource::File {
                    path: value_of("--graph")?,
                    default_prob: 0.1,
                });
            }
            "--name" => name = value_of("--name")?,
            "--scale" => {
                scale = value_of("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if let Some(SnapshotSource::Preset { scale: s, .. }) = &mut source {
                    *s = scale;
                }
            }
            "--k" => {
                k = value_of("--k")?
                    .parse()
                    .map_err(|e| format!("bad --k: {e}"))?;
            }
            "--rr-theta" => {
                rr_theta = value_of("--rr-theta")?
                    .parse()
                    .map_err(|e| format!("bad --rr-theta: {e}"))?;
            }
            "--seed" => {
                seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if cfg.workers == 0 {
        return Err("need at least one worker".into());
    }
    Ok(Args {
        cfg,
        snapshot: source.map(|source| SnapshotReq {
            name,
            source,
            k,
            rr_theta,
            seed,
            threads: 1,
        }),
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: atpm-served [--addr HOST:PORT] [--workers N] \
                 [--preset NAME | --graph PATH] [--name NAME] [--scale F] \
                 [--k N] [--rr-theta N] [--seed S]"
            );
            std::process::exit(2);
        }
    };
    let state = AppState::new();
    if let Some(req) = &args.snapshot {
        eprintln!("# building snapshot '{}'...", req.name);
        match Snapshot::build(req) {
            Ok(snap) => {
                eprintln!(
                    "# snapshot '{}': n={} m={} targets={} rr_sets={}",
                    snap.name,
                    snap.instance.graph().num_nodes(),
                    snap.instance.graph().num_edges(),
                    snap.instance.k(),
                    snap.rr.len(),
                );
                state.store.insert(snap);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    match Server::start(state, &args.cfg) {
        Ok(server) => {
            eprintln!(
                "# atpm-served listening on http://{} ({} workers); Ctrl-C to stop",
                server.addr(),
                args.cfg.workers,
            );
            // Run until killed: the worker pool owns the process.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.cfg.addr);
            std::process::exit(1);
        }
    }
}
