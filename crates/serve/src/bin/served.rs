//! `atpm-served` — run the adaptive-seeding service standalone.
//!
//! ```text
//! cargo run -p atpm-serve --release --bin atpm-served -- [flags]
//!
//! flags: --addr HOST:PORT      bind address          (default 127.0.0.1:8080)
//!        --backend epoll|pool  transport backend     (default epoll)
//!        --workers N           request workers       (default 4)
//!        --shards N            epoll reactor shards  (default 2)
//!        --session-ttl SECS    evict sessions idle this long (default: never)
//!        --idle-timeout SECS   close idle connections (epoll; default 60,
//!                              0 = never — note: reaping idle connections
//!                              departs from the pool oracle's byte-identical
//!                              behavior, which never reaps)
//!        --max-queue N         shed 503 past N queued jobs (epoll; default
//!                              1024, 0 = never shed)
//!        --journal PATH        append-only session journal, replayed
//!                              (checkpoint + tail) on restart (default: none)
//!        --fsync POLICY        journal durability: shutdown | group:MS |
//!                              always (default group:5 — appends batch
//!                              behind a shared fsync barrier with a 5 ms
//!                              latency window)
//!        --checkpoint-every S  checkpoint live sessions + rotate the
//!                              journal every S seconds; 0 disables
//!                              (default 300)
//!        --trace PATH          enable span tracing; dump Chrome trace-event
//!                              JSON (Perfetto-loadable) here on shutdown
//!        --profile-hz HZ       arm the SIGPROF sampling CPU profiler at HZ
//!                              samples/sec of process CPU time; dump folded
//!                              stacks on shutdown (default: off)
//!        --profile-out PATH    where the shutdown dump goes
//!                              (default atpm-profile.folded)
//!        --drain-ms MS         graceful-shutdown drain window (default 500)
//!        --snapshot-budget MB  snapshot-store LRU byte budget (default: unbounded)
//!        --preset NAME         preload a snapshot from a Table II preset
//!        --graph PATH          ...or from an edge-list/ATPMGRF1 file
//!        --name NAME           snapshot store key    (default "default")
//!        --scale F --k N --rr-theta N --seed S      snapshot knobs
//! ```
//!
//! Without `--preset`/`--graph` the server starts with an empty store;
//! load snapshots over the API (`POST /snapshots`). Runs until killed.
//! Under the default epoll backend, `--workers` bounds CPU concurrency
//! only — connection count is limited by fds, not threads; `--backend
//! pool` restores the original one-connection-per-worker accept pool.

use atpm_serve::journal::FsyncPolicy;
use atpm_serve::protocol::{SnapshotReq, SnapshotSource};
use atpm_serve::server::{AppState, Backend, ServeConfig, Server};
use atpm_serve::snapshot::Snapshot;

struct Args {
    cfg: ServeConfig,
    snapshot: Option<SnapshotReq>,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:8080".into(),
        ..ServeConfig::default()
    };
    let mut name = "default".to_string();
    let mut source: Option<SnapshotSource> = None;
    let (mut scale, mut k, mut rr_theta, mut seed) = (0.05f64, 8usize, 10_000usize, 7u64);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value_of("--addr")?,
            "--workers" => {
                cfg.workers = value_of("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--backend" => {
                let v = value_of("--backend")?;
                cfg.backend = Backend::parse(&v)
                    .ok_or_else(|| format!("bad --backend '{v}' (expected epoll | pool)"))?;
            }
            "--shards" => {
                cfg.shards = value_of("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if cfg.shards == 0 {
                    return Err("need at least one shard".into());
                }
            }
            "--session-ttl" => {
                let secs: u64 = value_of("--session-ttl")?
                    .parse()
                    .map_err(|e| format!("bad --session-ttl: {e}"))?;
                cfg.session_ttl_ms = (secs > 0).then_some(secs * 1_000);
            }
            "--idle-timeout" => {
                let secs: u64 = value_of("--idle-timeout")?
                    .parse()
                    .map_err(|e| format!("bad --idle-timeout: {e}"))?;
                cfg.idle_timeout_ms = (secs > 0).then_some(secs * 1_000);
            }
            "--max-queue" => {
                cfg.max_queue = value_of("--max-queue")?
                    .parse()
                    .map_err(|e| format!("bad --max-queue: {e}"))?;
            }
            "--journal" => cfg.journal_path = Some(value_of("--journal")?),
            "--fsync" => {
                let v = value_of("--fsync")?;
                cfg.fsync =
                    FsyncPolicy::parse(&v).map_err(|e| format!("bad --fsync '{v}': {e}"))?;
            }
            "--checkpoint-every" => {
                let secs: u64 = value_of("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                cfg.checkpoint_every_ms = secs * 1_000;
            }
            "--trace" => cfg.trace_path = Some(value_of("--trace")?),
            "--profile-hz" => {
                cfg.profile_hz = value_of("--profile-hz")?
                    .parse()
                    .map_err(|e| format!("bad --profile-hz: {e}"))?;
            }
            "--profile-out" => cfg.profile_path = Some(value_of("--profile-out")?),
            "--drain-ms" => {
                cfg.drain_ms = value_of("--drain-ms")?
                    .parse()
                    .map_err(|e| format!("bad --drain-ms: {e}"))?;
            }
            "--snapshot-budget" => {
                let mb: usize = value_of("--snapshot-budget")?
                    .parse()
                    .map_err(|e| format!("bad --snapshot-budget: {e}"))?;
                cfg.snapshot_budget_bytes = (mb > 0).then_some(mb * 1024 * 1024);
            }
            "--preset" => {
                source = Some(SnapshotSource::Preset {
                    dataset: value_of("--preset")?,
                    scale,
                });
            }
            "--graph" => {
                source = Some(SnapshotSource::File {
                    path: value_of("--graph")?,
                    default_prob: 0.1,
                });
            }
            "--name" => name = value_of("--name")?,
            "--scale" => {
                scale = value_of("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if let Some(SnapshotSource::Preset { scale: s, .. }) = &mut source {
                    *s = scale;
                }
            }
            "--k" => {
                k = value_of("--k")?
                    .parse()
                    .map_err(|e| format!("bad --k: {e}"))?;
            }
            "--rr-theta" => {
                rr_theta = value_of("--rr-theta")?
                    .parse()
                    .map_err(|e| format!("bad --rr-theta: {e}"))?;
            }
            "--seed" => {
                seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if cfg.workers == 0 {
        return Err("need at least one worker".into());
    }
    Ok(Args {
        cfg,
        snapshot: source.map(|source| SnapshotReq {
            name,
            source,
            k,
            rr_theta,
            seed,
            threads: 1,
        }),
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: atpm-served [--addr HOST:PORT] [--backend epoll|pool] \
                 [--workers N] [--shards N] [--session-ttl SECS] \
                 [--idle-timeout SECS] [--max-queue N] [--journal PATH] \
                 [--fsync shutdown|group:MS|always] [--checkpoint-every SECS] \
                 [--trace PATH] [--profile-hz HZ] [--profile-out PATH] \
                 [--drain-ms MS] [--snapshot-budget MB] \
                 [--preset NAME | --graph PATH] \
                 [--name NAME] [--scale F] [--k N] [--rr-theta N] [--seed S]"
            );
            std::process::exit(2);
        }
    };
    // Arm the profiler before the boot snapshot build, not just in
    // `Server::start`: the build is the heaviest CPU this process may ever
    // run, and the shutdown dump should include it. `Server::start` re-arms
    // at the same rate (idempotent) and owns the dump path.
    if args.cfg.profile_hz > 0 {
        if let Err(e) = atpm_net::sys::profiler_arm(args.cfg.profile_hz) {
            eprintln!("# warning: profiler unavailable ({e}); continuing without");
        }
    }
    let state = AppState::new();
    if let Some(req) = &args.snapshot {
        eprintln!("# building snapshot '{}'...", req.name);
        match Snapshot::build(req) {
            Ok(snap) => {
                eprintln!(
                    "# snapshot '{}': n={} m={} targets={} rr_sets={}",
                    snap.name,
                    snap.instance.graph().num_nodes(),
                    snap.instance.graph().num_edges(),
                    snap.instance.k(),
                    snap.rr.len(),
                );
                state.store.insert(snap);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    match Server::start(state, &args.cfg) {
        Ok(mut server) => {
            eprintln!(
                "# atpm-served listening on http://{} ({} backend, {} workers{}); Ctrl-C to stop",
                server.addr(),
                server.backend().as_str(),
                args.cfg.workers,
                match args.cfg.session_ttl_ms {
                    Some(ttl) => format!(", session TTL {}s", ttl / 1_000),
                    None => String::new(),
                } + &match &args.cfg.journal_path {
                    Some(path) => format!(", journal {path}"),
                    None => String::new(),
                },
            );
            // SIGINT/SIGTERM raise a flag; seeing it, shut down gracefully
            // (drain in-flight work, fsync the journal, dump the trace).
            // On platforms without the signal shim the old behavior stands:
            // run until killed.
            match atpm_net::sys::arm_terminate_flag() {
                Ok(flag) => {
                    while !flag.load(std::sync::atomic::Ordering::Acquire) {
                        std::thread::park_timeout(std::time::Duration::from_millis(200));
                    }
                    eprintln!("# terminate signal received; draining...");
                    server.shutdown();
                    // Lost durability must not look like a clean exit: a
                    // failed shutdown fsync (or a journal already poisoned
                    // by an earlier failure) exits nonzero so supervisors
                    // notice.
                    if server.durability_error().is_some() {
                        std::process::exit(3);
                    }
                }
                Err(_) => loop {
                    std::thread::park();
                },
            }
        }
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.cfg.addr);
            std::process::exit(1);
        }
    }
}
