//! Protocol clients: in-process (no sockets) and HTTP-over-TCP.
//!
//! [`LocalClient`] calls the same [`route`](crate::server::route) dispatcher
//! the HTTP workers use, so embedding the service in a binary (tests, the
//! `serve_campaign` example) exercises exactly the deployed protocol minus
//! the wire. [`HttpClient`] is the blocking socket counterpart used by the
//! load generator and the end-to-end tests; it keeps its connection alive
//! across requests, mirroring a real client SDK.

use std::io::{self, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use atpm_graph::Node;
use atpm_ris::CoverageScratch;

use crate::json::Json;
use crate::protocol::{
    ApiError, CreateSessionReq, Ledger, NextBatchReq, ObserveBatchReq, ObserveReq, SnapshotReq,
};
use crate::server::{route, AppState};
use std::sync::Arc;

/// Outcome of a protocol call made through a client.
pub type ApiResult = Result<Json, ApiError>;

/// A transport-agnostic protocol client: both clients implement the same
/// typed calls, so test and benchmark drivers are generic over transport.
pub trait ProtocolClient {
    /// Raw call: method + path + JSON body.
    fn call(&mut self, method: &str, path: &str, body: &Json) -> ApiResult;

    /// Loads a snapshot.
    fn create_snapshot(&mut self, req: &SnapshotReq) -> ApiResult {
        self.call("POST", "/snapshots", &req.to_json())
    }

    /// Opens a session; returns its token.
    fn create_session(&mut self, req: &CreateSessionReq) -> Result<String, ApiError> {
        let resp = self.call("POST", "/sessions", &req.to_json())?;
        resp.get("session")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ApiError::new(500, "response missing 'session'"))
    }

    /// Asks for the next seed batch; `None` when the policy is done.
    fn next(&mut self, token: &str) -> Result<Option<Vec<Node>>, ApiError> {
        let resp = self.call("POST", &format!("/sessions/{token}/next"), &Json::obj([]))?;
        if resp.get("done").and_then(Json::as_bool).unwrap_or(false) {
            return Ok(None);
        }
        let seeds = resp
            .get("seeds")
            .and_then(Json::as_arr)
            .ok_or_else(|| ApiError::new(500, "response missing 'seeds'"))?
            .iter()
            .filter_map(|x| x.as_u64().map(|v| v as Node))
            .collect();
        Ok(Some(seeds))
    }

    /// Asks for the next batch of up to `k` seeds in one low-adaptivity
    /// round; `None` when the policy is done. The pending batch must be
    /// observed via [`observe_batch`](Self::observe_batch) before the next
    /// round.
    fn next_batch(&mut self, token: &str, k: usize) -> Result<Option<Vec<Node>>, ApiError> {
        let resp = self.call(
            "POST",
            &format!("/sessions/{token}/next_batch"),
            &NextBatchReq { k }.to_json(),
        )?;
        if resp.get("done").and_then(Json::as_bool).unwrap_or(false) {
            return Ok(None);
        }
        let seeds = resp
            .get("seeds")
            .and_then(Json::as_arr)
            .ok_or_else(|| ApiError::new(500, "response missing 'seeds'"))?
            .iter()
            .filter_map(|x| x.as_u64().map(|v| v as Node))
            .collect();
        Ok(Some(seeds))
    }

    /// Reports (or asks the server to simulate) an observation.
    fn observe(&mut self, token: &str, req: &ObserveReq) -> ApiResult {
        self.call(
            "POST",
            &format!("/sessions/{token}/observe"),
            &req.to_json(),
        )
    }

    /// Reports (or asks the server to simulate) a whole round's observation.
    fn observe_batch(&mut self, token: &str, req: &ObserveBatchReq) -> ApiResult {
        self.call(
            "POST",
            &format!("/sessions/{token}/observe_batch"),
            &req.to_json(),
        )
    }

    /// Reads the session ledger.
    fn ledger(&mut self, token: &str) -> Result<Ledger, ApiError> {
        let resp = self.call("GET", &format!("/sessions/{token}/ledger"), &Json::obj([]))?;
        Ledger::from_json(&resp)
    }

    /// Closes a session.
    fn delete_session(&mut self, token: &str) -> ApiResult {
        self.call("DELETE", &format!("/sessions/{token}"), &Json::obj([]))
    }

    /// Drives one full adaptive run with server-side simulation: create →
    /// (next → observe)* → ledger. Returns the final ledger.
    fn run_session(&mut self, req: &CreateSessionReq) -> Result<Ledger, ApiError> {
        let token = self.create_session(req)?;
        while let Some(seeds) = self.next(&token)? {
            for seed in seeds {
                self.observe(&token, &ObserveReq::Simulate { seed })?;
            }
        }
        let ledger = self.ledger(&token)?;
        self.delete_session(&token)?;
        Ok(ledger)
    }

    /// Drives one full adaptive run in batched rounds of up to `k` seeds
    /// with server-side simulation: create → (next_batch → observe_batch)* →
    /// ledger. At `k = 1` the resulting ledger is byte-identical to
    /// [`run_session`](Self::run_session)'s.
    fn run_session_batched(
        &mut self,
        req: &CreateSessionReq,
        k: usize,
    ) -> Result<Ledger, ApiError> {
        let token = self.create_session(req)?;
        while let Some(seeds) = self.next_batch(&token, k)? {
            self.observe_batch(&token, &ObserveBatchReq::Simulate { seeds })?;
        }
        let ledger = self.ledger(&token)?;
        self.delete_session(&token)?;
        Ok(ledger)
    }
}

/// In-process client: protocol semantics without sockets.
pub struct LocalClient {
    state: Arc<AppState>,
    scratch: CoverageScratch,
}

impl LocalClient {
    /// A client over shared state.
    pub fn new(state: Arc<AppState>) -> Self {
        LocalClient {
            state,
            scratch: CoverageScratch::new(),
        }
    }

    /// The shared state (e.g. to start a socket server over the same store).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }
}

impl ProtocolClient for LocalClient {
    fn call(&mut self, method: &str, path: &str, body: &Json) -> ApiResult {
        route(&self.state, method, path, body, &mut self.scratch).map(|(_, json)| json)
    }
}

/// Blocking HTTP/1.1 client over one keep-alive connection.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn exchange(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: atpm\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;

        // Status line.
        let mut status_line = String::new();
        read_line(&mut self.reader, &mut status_line)?;
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        // Headers.
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            read_line(&mut self.reader, &mut line)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, body))
    }

    /// GETs `path` and returns `(status, body)` as text — the non-JSON
    /// escape hatch `/metrics` scrapes use (the exposition is Prometheus
    /// text, not a protocol object).
    pub fn get_text(&mut self, path: &str) -> io::Result<(u16, String)> {
        let (status, bytes) = self.exchange("GET", path, b"")?;
        let text = String::from_utf8(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
        Ok((status, text))
    }
}

fn read_line(reader: &mut BufReader<TcpStream>, out: &mut String) -> io::Result<()> {
    let mut byte = [0u8; 1];
    loop {
        reader.read_exact(&mut byte)?;
        if byte[0] == b'\n' {
            if out.ends_with('\r') {
                out.pop();
            }
            return Ok(());
        }
        out.push(byte[0] as char);
    }
}

impl ProtocolClient for HttpClient {
    fn call(&mut self, method: &str, path: &str, body: &Json) -> ApiResult {
        let (status, bytes) = self
            .exchange(method, path, body.encode().as_bytes())
            .map_err(|e| ApiError::new(500, format!("transport: {e}")))?;
        let text =
            String::from_utf8(bytes).map_err(|_| ApiError::new(500, "non-UTF-8 response body"))?;
        let json = Json::parse(&text).map_err(|e| ApiError::new(500, format!("bad body: {e}")))?;
        if (200..300).contains(&status) {
            Ok(json)
        } else {
            let message = json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            Err(ApiError::new(status, message))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{PolicySpec, SnapshotSource};

    fn snapshot_req() -> SnapshotReq {
        SnapshotReq {
            name: "g".into(),
            source: SnapshotSource::Preset {
                dataset: "nethept".into(),
                scale: 0.02,
            },
            k: 4,
            rr_theta: 4_000,
            seed: 1,
            threads: 1,
        }
    }

    fn session_req(world: u64) -> CreateSessionReq {
        CreateSessionReq {
            snapshot: "g".into(),
            policy: PolicySpec::DeployAll,
            world_seed: world,
        }
    }

    #[test]
    fn local_client_runs_a_full_session() {
        let mut client = LocalClient::new(AppState::new());
        client.create_snapshot(&snapshot_req()).unwrap();
        let ledger = client.run_session(&session_req(5)).unwrap();
        assert!(ledger.done);
        assert!(!ledger.selected.is_empty());
        assert_eq!(ledger.algorithm, "DeployAll");
        // Session was deleted by run_session.
        assert!(client.state().manager.is_empty());
    }

    #[test]
    fn batched_run_at_k1_matches_single_seed_run() {
        let mut client = LocalClient::new(AppState::new());
        client.create_snapshot(&snapshot_req()).unwrap();
        let single = client.run_session(&session_req(5)).unwrap();
        let batched = client.run_session_batched(&session_req(5), 1).unwrap();
        assert_eq!(batched, single);
        assert_eq!(batched.profit.to_bits(), single.profit.to_bits());
        assert_eq!(batched.rounds, single.rounds);
    }

    #[test]
    fn batched_run_over_http_matches_local() {
        use crate::server::{ServeConfig, Server};
        let state = AppState::new();
        let mut local = LocalClient::new(state.clone());
        local.create_snapshot(&snapshot_req()).unwrap();
        let mut server = Server::start(state, &ServeConfig::default()).unwrap();

        let req = CreateSessionReq {
            snapshot: "g".into(),
            policy: PolicySpec::ThresholdBatch {
                theta: 2_000,
                eps: 0.1,
                batch: 4,
                seed: 7,
                threads: 1,
            },
            world_seed: 5,
        };
        let mut http = HttpClient::connect(server.addr()).unwrap();
        let from_http = http.run_session_batched(&req, 4).unwrap();
        let from_local = local.run_session_batched(&req, 4).unwrap();
        assert_eq!(from_http, from_local);
        assert_eq!(from_http.profit.to_bits(), from_local.profit.to_bits());
        assert!(from_http.rounds >= 1);
        server.shutdown();
    }

    #[test]
    fn local_client_surfaces_api_errors() {
        let mut client = LocalClient::new(AppState::new());
        let err = client.create_session(&session_req(1)).unwrap_err();
        assert_eq!(err.status, 404);
    }

    #[test]
    fn http_client_matches_local_client() {
        use crate::server::{ServeConfig, Server};
        let state = AppState::new();
        let mut local = LocalClient::new(state.clone());
        local.create_snapshot(&snapshot_req()).unwrap();
        let mut server = Server::start(state, &ServeConfig::default()).unwrap();

        let mut http = HttpClient::connect(server.addr()).unwrap();
        let from_http = http.run_session(&session_req(5)).unwrap();
        let from_local = local.run_session(&session_req(5)).unwrap();
        assert_eq!(from_http, from_local);
        assert_eq!(from_http.profit.to_bits(), from_local.profit.to_bits());

        // Error statuses travel the wire too.
        let err = http.next("missing").unwrap_err();
        assert_eq!(err.status, 404);
        server.shutdown();
    }
}
