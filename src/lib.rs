//! # adaptive-tpm
//!
//! Facade crate for the adaptive target profit maximization (TPM) stack — a
//! from-scratch Rust reproduction of *"Efficient Approximation Algorithms for
//! Adaptive Target Profit Maximization"* (Huang, Tang, Xiao, Sun, Lim;
//! ICDE 2020).
//!
//! The implementation lives in five focused crates, all re-exported here:
//!
//! * [`graph`] — probabilistic social graphs (CSR storage, residual views,
//!   synthetic dataset presets);
//! * [`diffusion`] — the independent-cascade engine (realizations, cascades,
//!   spread estimation);
//! * [`ris`] — reverse-influence sampling (RR sets, coverage, concentration
//!   bounds);
//! * [`im`] — influence maximization substrate (lazy greedy, IMM);
//! * [`core`] — the paper's contribution: the adaptive TPM problem, the
//!   ADG / ADDATP / HATP policies and all evaluated baselines;
//! * [`serve`] — the serve-observe-update loop as a concurrent HTTP service
//!   (snapshot store, session manager, protocol clients).
//!
//! See `examples/quickstart.rs` for an end-to-end tour and
//! `examples/serve_campaign.rs` for the service protocol.
//!
//! ```
//! use adaptive_tpm::core::policies::Hatp;
//! use adaptive_tpm::core::runner::evaluate_adaptive;
//! use adaptive_tpm::core::TpmInstance;
//! use adaptive_tpm::graph::GraphBuilder;
//!
//! // A two-hop chain where the hub is worth seeding and the tail is not.
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 1.0).unwrap();
//! b.add_edge(1, 2, 1.0).unwrap();
//! let instance = TpmInstance::new(b.build(), vec![0, 2], &[1.5, 2.0]);
//!
//! let mut hatp = Hatp { seed: 7, ..Default::default() };
//! let summary = evaluate_adaptive(&instance, &mut hatp, &[1, 2, 3]);
//! // Seeding the hub activates all 3 nodes at cost 1.5; the tail (already
//! // activated) is skipped, so every world realizes profit 1.5.
//! assert!((summary.mean_profit() - 1.5).abs() < 1e-9);
//! ```

pub use atpm_core as core;
pub use atpm_diffusion as diffusion;
pub use atpm_graph as graph;
pub use atpm_im as im;
pub use atpm_ris as ris;
pub use atpm_serve as serve;
