#!/usr/bin/env python3
"""Gate on RIS-engine benchmark regressions.

Usage: bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.10]

Compares the median of every gated stage in CURRENT against BASELINE and
fails if any regresses by more than the tolerance. Gated stages are the
two end-to-end contracts: `ris_engine/generate_batch/*` (reverse sampling,
the bound of every RIS policy) and `ris_engine/cascade_mc_spread` (the
batched forward MC driver, the bound of the spread oracle and world
scoring). Other stages are reported but advisory: CI runners are noisy,
and the committed trajectory is measured on the 1-vCPU build container,
so only the headline stages gate.
"""

import json
import sys

GATED_PREFIXES = (
    "ris_engine/generate_batch/",
    "ris_engine/cascade_mc_spread",
)


def medians(path):
    with open(path) as f:
        return {r["id"]: float(r["median_ns"]) for r in json.load(f)}


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    tolerance = 0.10
    if "--tolerance" in argv:
        tolerance = float(argv[argv.index("--tolerance") + 1])
    base = medians(argv[1])
    cur = medians(argv[2])
    failed = False
    for bench_id in sorted(set(base) & set(cur)):
        ratio = cur[bench_id] / base[bench_id]
        gated = bench_id.startswith(GATED_PREFIXES)
        verdict = ""
        if ratio > 1.0 + tolerance:
            if gated:
                verdict = "  REGRESSION (gated)"
                failed = True
            else:
                verdict = "  slower (advisory)"
        print(
            f"{bench_id:50s} {base[bench_id]/1e6:9.3f}ms -> "
            f"{cur[bench_id]/1e6:9.3f}ms  x{ratio:.2f}{verdict}"
        )
    new_ids = set(cur) - set(base)
    for bench_id in sorted(new_ids):
        print(f"{bench_id:50s}        new -> {cur[bench_id]/1e6:9.3f}ms")
    if failed:
        print(f"FAIL: a gated stage regressed more than {tolerance:.0%}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
