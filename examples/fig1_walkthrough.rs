//! A reconstruction of the paper's Fig. 1 worked example: a 7-node social
//! graph where the adaptive strategy beats the optimal nonadaptive solution
//! by exploiting realized feedback.
//!
//! The paper's figure gives T = {v1, v2, v6}, every cost 1.5, and shows a
//! realization where the adaptive policy earns profit 3 while the
//! nonadaptive optimum (seeding all of T) earns 2.5. The exact edge list is
//! not recoverable from the text, so this example builds a graph *in the
//! spirit of the figure* — v2 reaches {v3, v4}, v6 reaches {v5, v7}, v1
//! overlaps with v2's audience — and recomputes every number with the exact
//! oracle so the story is verifiable end to end.
//!
//! ```text
//! cargo run --release --example fig1_walkthrough
//! ```

use adaptive_tpm::core::oracle::ExactOracle;
use adaptive_tpm::core::policies::Adg;
use adaptive_tpm::core::theory::{
    exact_policy_value, optimal_adaptive_value, optimal_nonadaptive_value,
};
use adaptive_tpm::core::{AdaptivePolicy, AdaptiveSession, TpmInstance};
use adaptive_tpm::graph::GraphBuilder;

fn main() {
    // Nodes: 0..=6 standing in for v1..=v7.
    let (v1, v2, v3, v4, v5, v6, v7) = (0u32, 1, 2, 3, 4, 5, 6);
    let mut b = GraphBuilder::new(7);
    b.add_edge(v1, v3, 0.4).unwrap(); // v1's audience overlaps v2's
    b.add_edge(v2, v3, 0.8).unwrap();
    b.add_edge(v2, v4, 0.7).unwrap();
    b.add_edge(v3, v4, 0.6).unwrap();
    b.add_edge(v6, v5, 0.7).unwrap();
    b.add_edge(v6, v7, 0.6).unwrap();
    b.add_edge(v5, v7, 0.3).unwrap();
    let graph = b.build();

    let instance = TpmInstance::new(graph, vec![v1, v2, v6], &[1.5, 1.5, 1.5]);

    println!("== the Fig. 1 story, recomputed exactly ==\n");
    let best_nonadaptive = optimal_nonadaptive_value(&instance);
    let best_adaptive = optimal_adaptive_value(&instance);
    println!("optimal nonadaptive profit  max_S rho(S) = {best_nonadaptive:.4}");
    println!("optimal adaptive   profit  Lambda(pi*)  = {best_adaptive:.4}");
    println!(
        "adaptivity gap: {:.1}%\n",
        100.0 * (best_adaptive - best_nonadaptive) / best_nonadaptive
    );

    // Λ(ADG) over every possible world, plus Theorem 1's bound.
    let adg_value = exact_policy_value(&instance, &mut Adg::new(ExactOracle));
    println!(
        "Lambda(ADG) = {adg_value:.4}  (Theorem 1 floor: {:.4})",
        best_adaptive / 3.0
    );
    assert!(adg_value >= best_adaptive / 3.0 - 1e-9);

    // One concrete world, narrated like the figure: find a world seed where
    // v2 activates both v3 and v4, then v6 activates v5 and v7.
    println!("\n== one realization, step by step ==");
    for world in 0..200u64 {
        let mut session = AdaptiveSession::new(&instance, world);
        let mut adg = Adg::new(ExactOracle);
        let selected = adg.run(&mut session);
        if selected == vec![v2, v6] && session.total_activated() == 6 {
            // Re-run with narration.
            let mut session = AdaptiveSession::new(&instance, world);
            println!("world #{world}:");
            let a = session.select(v2);
            println!(
                "  select v2 -> activates {} nodes: {:?}",
                a.len(),
                pretty(&a)
            );
            let b = session.select(v6);
            println!(
                "  select v6 -> activates {} nodes: {:?}",
                b.len(),
                pretty(&b)
            );
            println!(
                "  adaptive profit: {} activated - {} cost = {}",
                session.total_activated(),
                3.0,
                session.profit()
            );
            println!("  nonadaptive (seed all of T) in the same world would pay 4.5 in costs");
            return;
        }
    }
    println!("(no narrating world found in the first 200 seeds — unusual but harmless)");
}

fn pretty(nodes: &[u32]) -> Vec<String> {
    nodes.iter().map(|u| format!("v{}", u + 1)).collect()
}
