//! The adaptivity gap, measured: sweep the edge strength of a small graph
//! and compare the *optimal* adaptive policy against the *optimal*
//! nonadaptive seed set (both brute-forced exactly), plus ADG's guaranteed
//! fraction of the optimum.
//!
//! Intuition from the paper (§I, §II-B): feedback matters most when cascades
//! are uncertain — at p → 0 or p → 1 there is nothing to learn, in between
//! observing who got activated saves wasted seeding costs.
//!
//! ```text
//! cargo run --release --example adaptive_vs_nonadaptive
//! ```

use adaptive_tpm::core::oracle::ExactOracle;
use adaptive_tpm::core::policies::Adg;
use adaptive_tpm::core::theory::{
    exact_policy_value, optimal_adaptive_value, optimal_nonadaptive_value,
};
use adaptive_tpm::core::TpmInstance;
use adaptive_tpm::graph::GraphBuilder;

fn instance_with_strength(p: f32) -> TpmInstance {
    // A chain 0 -> 1 -> 2 with both endpoints of the first edge targetable.
    // Seeding 1 is worth it *only in the worlds where 0's cascade failed to
    // reach it* — precisely the information an adaptive policy observes and
    // a nonadaptive one must gamble on. Closed form for p > 0.05:
    //   nonadaptive OPT = E[I({0})] - 0.4           = 0.6 + p + p²
    //   adaptive OPT    = nonadaptive + (1-p)(p-0.05)
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1, p).unwrap();
    b.add_edge(1, 2, p).unwrap();
    TpmInstance::new(b.build(), vec![0, 1], &[0.4, 1.05])
}

fn main() {
    println!("edge p | nonadaptive OPT | adaptive OPT | gap    | Lambda(ADG) | >= OPT/3");
    println!("-------+-----------------+--------------+--------+-------------+---------");
    for pct in (5..=95).step_by(10) {
        let p = pct as f32 / 100.0;
        let inst = instance_with_strength(p);
        let non = optimal_nonadaptive_value(&inst);
        let ada = optimal_adaptive_value(&inst);
        let adg = exact_policy_value(&inst, &mut Adg::new(ExactOracle));
        let gap = if non > 1e-12 {
            100.0 * (ada - non) / non
        } else {
            0.0
        };
        let ok = adg >= ada / 3.0 - 1e-9;
        println!(
            "{p:6.2} | {non:15.4} | {ada:12.4} | {gap:5.1}% | {adg:11.4} | {}",
            if ok { "yes" } else { "VIOLATION" }
        );
        assert!(ok, "Theorem 1 must hold");
        assert!(ada >= non - 1e-9, "adaptive OPT dominates nonadaptive OPT");
    }
    println!("\nNote the inverted-U: the gap vanishes at the deterministic ends.");
}
