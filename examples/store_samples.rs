//! In-store free samples: the paper's second motivating scenario — "new shop
//! owners provide free samples to the popularities or celebrities who visit
//! their store on site".
//!
//! The target set is the set of high-profile visitors (top out-degree
//! "celebrities"), and the sample cost is degree-proportional: courting a
//! bigger celebrity costs more. Visitors arrive one at a time, which is the
//! adaptive setting in its purest form: after each sample is handed out the
//! shop watches the buzz it generates before deciding on the next visitor.
//!
//! ```text
//! cargo run --release --example store_samples
//! ```

use adaptive_tpm::core::cost::{split_total_cost, CostSplit};
use adaptive_tpm::core::policies::{Ars, Hatp, Nsg};
use adaptive_tpm::core::runner::{evaluate_adaptive, evaluate_nonadaptive, standard_worlds};
use adaptive_tpm::core::TpmInstance;
use adaptive_tpm::graph::gen::Dataset;
use adaptive_tpm::im::spread_lower_bound;

fn main() {
    let graph = Dataset::Dblp.generate(0.01, 23); // ~6.5K-node collaboration graph

    // The celebrities: top-60 users by out-degree (visible popularity is the
    // store's only signal; it has no IMM machinery).
    let mut by_degree: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(graph.out_degree(u)));
    let celebrities: Vec<u32> = by_degree[..60].to_vec();

    // Budget: calibrated to a lower bound of the celebrity set's spread
    // (paper §VI-A), split proportionally to degree.
    let budget = spread_lower_bound(&&graph, &celebrities, 40_000, 0.01, 1, 2);
    let costs = split_total_cost(&graph, &celebrities, CostSplit::DegreeProportional, budget);
    println!(
        "celebrities: {}; total sampling budget c(T) = {budget:.0}",
        celebrities.len()
    );
    let instance = TpmInstance::new(graph, celebrities, &costs);

    let worlds = standard_worlds(17);

    let mut careful = Hatp {
        seed: 2,
        threads: 2,
        ..Default::default()
    };
    let hatp = evaluate_adaptive(&instance, &mut careful, &worlds);

    let mut coin_flip = Ars::default();
    let ars = evaluate_adaptive(&instance, &mut coin_flip, &worlds);

    let mut batch = Nsg::new(50_000, 2, 2);
    let nsg = evaluate_nonadaptive(&instance, &mut batch, &worlds);

    println!("\nstrategy                       mean profit   samples handed out");
    println!(
        "watch-the-buzz (HATP)          {:>10.1}   {:>10.1}",
        hatp.mean_profit(),
        hatp.mean_seeds()
    );
    println!(
        "one-shot shortlist (NSG)       {:>10.1}   {:>10.1}",
        nsg.mean_profit(),
        nsg.mean_seeds()
    );
    println!(
        "coin-flip per visitor (ARS)    {:>10.1}   {:>10.1}",
        ars.mean_profit(),
        ars.mean_seeds()
    );

    assert!(
        hatp.mean_profit() >= ars.mean_profit(),
        "informed adaptive selection should beat coin flips on average"
    );
}
