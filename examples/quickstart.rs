//! Quickstart: build a social graph, set up a target profit maximization
//! instance, and run the paper's flagship algorithm (HATP) against the
//! nonadaptive double greedy baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptive_tpm::core::policies::{Hatp, Ndg};
use adaptive_tpm::core::runner::{evaluate_adaptive, evaluate_nonadaptive, standard_worlds};
use adaptive_tpm::core::setup::{calibrated_instance, CalibrationConfig};
use adaptive_tpm::core::CostSplit;
use adaptive_tpm::graph::gen::Dataset;
use adaptive_tpm::graph::GraphStats;

fn main() {
    // 1. A synthetic stand-in for the NetHEPT collaboration network at 20%
    //    scale (~3K nodes), with the paper's weighted-cascade probabilities
    //    p(u,v) = 1/indeg(v) already applied.
    let graph = Dataset::NetHept.generate(0.2, 42);
    println!("graph: {}", GraphStats::compute(&graph));

    // 2. The paper's first workload (§VI-A): the target set T is the top-25
    //    influential users (IMM), and the total seeding budget c(T) is
    //    calibrated to a lower bound of T's expected spread, split uniformly.
    let instance = calibrated_instance(
        graph,
        25,
        CostSplit::Uniform,
        CalibrationConfig {
            seed: 42,
            threads: 2,
            ..Default::default()
        },
    );
    println!(
        "target set: k = {}, c(T) = {:.1}",
        instance.k(),
        instance.total_cost()
    );

    // 3. Evaluate over the paper's protocol: 20 sampled possible worlds.
    let worlds = standard_worlds(7);

    // Adaptive: HATP selects seeds one by one, watching each cascade land.
    let mut hatp = Hatp {
        seed: 1,
        threads: 2,
        ..Default::default()
    };
    let adaptive = evaluate_adaptive(&instance, &mut hatp, &worlds);

    // Nonadaptive: NDG commits to one batch before the campaign starts.
    let mut ndg = Ndg::new(100_000, 1, 2);
    let nonadaptive = evaluate_nonadaptive(&instance, &mut ndg, &worlds);

    println!("\n               mean profit    std      seeds   decision time");
    for s in [&adaptive, &nonadaptive] {
        println!(
            "{:>10}    {:>10.1}  {:>7.1}  {:>7.1}   {:>10.2?}",
            s.algorithm,
            s.mean_profit(),
            s.std_profit(),
            s.mean_seeds(),
            s.decision_time,
        );
    }
    let lift = 100.0 * (adaptive.mean_profit() - nonadaptive.mean_profit())
        / nonadaptive.mean_profit().abs().max(1e-9);
    println!("\nadaptivity lift: {lift:+.1}% (paper reports ~10-15% on average)");
}
