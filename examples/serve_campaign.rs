//! A seeding campaign driven through the serve protocol — in-process, no
//! sockets.
//!
//! `LocalClient` speaks the exact protocol the HTTP server exposes (same
//! router, same typed messages), so this example is both a usage guide for
//! embedding the service and a living spec of the wire format. The flow is
//! a miniature marketing campaign:
//!
//! 1. load a snapshot (graph + targets + costs + pre-frozen RR index),
//! 2. ask the snapshot for a warm-start spread estimate of its target set,
//! 3. open an adaptive HATP session, drive the serve-observe-update loop,
//! 4. compare the realized ledger with a cheap DeployAll baseline session.
//!
//! Run with: `cargo run --release --example serve_campaign`

use adaptive_tpm::serve::client::{LocalClient, ProtocolClient};
use adaptive_tpm::serve::json::Json;
use adaptive_tpm::serve::protocol::{
    CreateSessionReq, ObserveReq, PolicySpec, SnapshotReq, SnapshotSource,
};
use adaptive_tpm::serve::server::AppState;

fn main() {
    let mut client = LocalClient::new(AppState::new());

    // 1. Load a snapshot: NetHEPT stand-in, 8 IMM-selected targets with
    //    degree-proportional calibrated costs, 10k pre-frozen RR sets.
    let info = client
        .create_snapshot(&SnapshotReq {
            name: "campaign".into(),
            source: SnapshotSource::Preset {
                dataset: "nethept".into(),
                scale: 0.05,
            },
            k: 8,
            rr_theta: 10_000,
            seed: 7,
            threads: 1,
        })
        .expect("snapshot build");
    println!(
        "snapshot: {} nodes, {} edges, {} targets, total cost {:.1}",
        info.get("nodes").unwrap().as_u64().unwrap(),
        info.get("edges").unwrap().as_u64().unwrap(),
        info.get("targets").unwrap().as_u64().unwrap(),
        info.get("total_cost").unwrap().as_f64().unwrap(),
    );

    // 2. Warm-start estimate from the pre-frozen index (no resampling).
    let targets: Vec<u32> = {
        // The protocol has no "list targets" call; estimate the first few
        // node ids just to demonstrate the endpoint.
        (0..5).collect()
    };
    let est = client
        .call(
            "POST",
            "/snapshots/campaign/estimate",
            &Json::obj([("nodes", Json::nums(targets.iter().copied()))]),
        )
        .expect("estimate");
    println!(
        "estimated spread of nodes 0..5: {:.1} (from {} stored RR sets)",
        est.get("spread").unwrap().as_f64().unwrap(),
        est.get("rr_sets").unwrap().as_u64().unwrap(),
    );

    // 3. An adaptive HATP session, stepped seed by seed. `simulate: true`
    //    asks the server to realize each cascade in the session's own
    //    possible world — a real deployment would instead POST the observed
    //    activations (`ObserveReq::Report`).
    let token = client
        .create_session(&CreateSessionReq {
            snapshot: "campaign".into(),
            policy: PolicySpec::Hatp {
                eps_threshold: Some(0.1),
                max_theta: Some(1 << 16),
                seed: 1,
                threads: 1,
            },
            world_seed: 42,
        })
        .expect("create session");
    while let Some(seeds) = client.next(&token).expect("next") {
        for seed in seeds {
            let obs = client
                .observe(&token, &ObserveReq::Simulate { seed })
                .expect("observe");
            println!(
                "  committed seed {seed}: cascade activated {} nodes",
                obs.get("newly_activated").unwrap().as_u64().unwrap(),
            );
        }
    }
    let hatp_ledger = client.ledger(&token).expect("ledger");
    println!(
        "HATP: {} seeds, {} activated, profit {:.2}, {} RR sets sampled",
        hatp_ledger.selected.len(),
        hatp_ledger.total_activated,
        hatp_ledger.profit,
        hatp_ledger.sampling_work,
    );
    client.delete_session(&token).expect("delete");

    // 4. Baseline for comparison: deploy every target, same world.
    let baseline = client
        .run_session(&CreateSessionReq {
            snapshot: "campaign".into(),
            policy: PolicySpec::DeployAll,
            world_seed: 42,
        })
        .expect("baseline run");
    println!(
        "DeployAll: {} seeds, {} activated, profit {:.2}",
        baseline.selected.len(),
        baseline.total_activated,
        baseline.profit,
    );
    println!(
        "HATP profit − DeployAll profit: {:+.2} (either sign is possible: \
         cost calibration keeps the whole target set ~profitable)",
        hatp_ledger.profit - baseline.profit,
    );
}
