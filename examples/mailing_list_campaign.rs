//! Mailing-list campaign: the paper's motivating scenario where the
//! advertiser only has access to a *fraction* of users (its subscription
//! list), not the whole network — exactly why TPM generalizes PM.
//!
//! The target set here is a random 2% sample of the network ("subscribers"),
//! with uniform per-user incentive costs. The campaign runs in waves: after
//! each wave of coupons, the realized word-of-mouth spread is observed and
//! already-converted subscribers are skipped. We compare HATP against a
//! one-shot batch send (NDG) and against mailing every subscriber.
//!
//! ```text
//! cargo run --release --example mailing_list_campaign
//! ```

use adaptive_tpm::core::policies::{Baseline, Hatp, Ndg};
use adaptive_tpm::core::runner::{evaluate_adaptive, evaluate_nonadaptive, standard_worlds};
use adaptive_tpm::core::TpmInstance;
use adaptive_tpm::graph::gen::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let graph = Dataset::Epinions.generate(0.05, 11); // ~6.6K-node trust graph
    let n = graph.num_nodes();

    // The subscription list: a uniform 2% sample of all users.
    let mut rng = StdRng::seed_from_u64(99);
    let mut subscribers: Vec<u32> = (0..n as u32).filter(|_| rng.gen::<f64>() < 0.02).collect();
    subscribers.truncate(200);
    let k = subscribers.len();

    // Flat incentive: every coupon costs the same. A total budget of ~1.2
    // units per subscriber makes weak subscribers unprofitable, so the
    // algorithms must actually choose.
    let costs = vec![1.2; k];
    let instance = TpmInstance::new(graph, subscribers, &costs);
    println!(
        "subscription list: {k} of {n} users; coupon cost 1.2 each (c(T) = {:.0})",
        instance.total_cost()
    );

    let worlds = standard_worlds(3);

    let mut wave_based = Hatp {
        seed: 5,
        threads: 2,
        ..Default::default()
    };
    let adaptive = evaluate_adaptive(&instance, &mut wave_based, &worlds);

    let mut one_shot = Ndg::new(50_000, 5, 2);
    let batch = evaluate_nonadaptive(&instance, &mut one_shot, &worlds);

    let everyone = evaluate_nonadaptive(&instance, &mut Baseline, &worlds);

    println!("\ncampaign strategy             mean profit   coupons sent");
    println!(
        "wave-based (HATP, adaptive)    {:>10.1}   {:>10.1}",
        adaptive.mean_profit(),
        adaptive.mean_seeds()
    );
    println!(
        "one-shot batch (NDG)           {:>10.1}   {:>10.1}",
        batch.mean_profit(),
        batch.mean_seeds()
    );
    println!(
        "mail every subscriber          {:>10.1}   {:>10.1}",
        everyone.mean_profit(),
        everyone.mean_seeds()
    );

    assert!(
        adaptive.mean_profit() >= everyone.mean_profit() - 1e-9,
        "choosing cannot lose to mailing everyone in expectation"
    );
}
