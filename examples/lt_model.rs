//! The linear threshold (LT) extension: the same profit-maximization
//! machinery on the other classical diffusion model.
//!
//! The paper's experiments use IC; its theory only needs a monotone
//! submodular spread, which Kempe et al. prove for LT too. This example
//! contrasts IC and LT spreads of the same seed set and runs an adaptive
//! take-all campaign under LT feedback.
//!
//! ```text
//! cargo run --release --example lt_model
//! ```

use adaptive_tpm::diffusion::lt::{lt_mc_spread, lt_observe, normalize_lt_weights, LtRealization};
use adaptive_tpm::diffusion::mc_spread;
use adaptive_tpm::graph::gen::Dataset;
use adaptive_tpm::graph::{GraphView, ResidualGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Weighted-cascade probabilities double as valid LT weights
    // (in-weights sum to exactly 1), so the same graph serves both models.
    let graph = Dataset::NetHept.generate(0.1, 31);
    let graph = normalize_lt_weights(&graph); // no-op here, but idiomatic
    let seeds: Vec<u32> = (0..10).collect();

    let mut rng = StdRng::seed_from_u64(1);
    let ic = mc_spread(&&graph, &seeds, 20_000, &mut rng);
    let lt = lt_mc_spread(&&graph, &seeds, 20_000, 1);
    println!("same 10 seeds on {} nodes:", graph.num_nodes());
    println!("  IC expected spread: {ic:.1}");
    println!("  LT expected spread: {lt:.1}");
    println!("  (LT >= IC on WIC weights is typical: thresholds pool weight)");

    // Adaptive observation loop under LT: select seeds one by one, watch the
    // LT cascade land, remove activated nodes.
    let world = LtRealization::new(99);
    let mut residual = ResidualGraph::new(&graph);
    let mut total = 0usize;
    println!("\nadaptive LT walk (world #99):");
    for &s in &seeds[..5] {
        if !residual.is_alive(s) {
            println!("  seed {s}: already activated, skipped");
            continue;
        }
        let cascade = lt_observe(&residual, &world, &[s]);
        total += cascade.len();
        residual.remove_all(cascade.iter().copied());
        println!(
            "  seed {s}: activated {} nodes (running total {total})",
            cascade.len()
        );
    }
    assert_eq!(
        total,
        graph.num_nodes() - residual.num_alive(),
        "ledger must match the residual view"
    );
}
